"""Tests for the synthetic point-cloud generators."""

import pytest

from repro.exceptions import InvalidParameterError
from repro.workloads.synthetic import (
    clustered_points,
    grid_points,
    normalise_unit_square,
    ring_points,
    shuffled,
    uniform_points,
)


class TestUniformPoints:
    def test_count_and_dimensionality(self):
        points = uniform_points(50, dims=3)
        assert len(points) == 50
        assert all(len(p) == 3 for p in points)

    def test_range_respected(self):
        points = uniform_points(200, low=-5, high=5, seed=1)
        assert all(-5 <= c <= 5 for p in points for c in p)

    def test_deterministic_given_seed(self):
        assert uniform_points(20, seed=3) == uniform_points(20, seed=3)
        assert uniform_points(20, seed=3) != uniform_points(20, seed=4)

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            uniform_points(-1)
        with pytest.raises(InvalidParameterError):
            uniform_points(10, dims=0)
        with pytest.raises(InvalidParameterError):
            uniform_points(10, low=1, high=0)


class TestClusteredPoints:
    def test_count_and_bounds(self):
        points = clustered_points(300, clusters=5, seed=2)
        assert len(points) == 300
        assert all(0 <= c <= 1 for p in points for c in p)

    def test_clustering_is_tighter_than_uniform(self):
        """Clustered data has smaller mean nearest-neighbour distance."""
        import math

        def mean_nn(points):
            total = 0.0
            for i, p in enumerate(points):
                total += min(
                    math.dist(p, q) for j, q in enumerate(points) if i != j
                )
            return total / len(points)

        clustered = clustered_points(150, clusters=5, spread=0.01, noise_fraction=0.0, seed=3)
        uniform = uniform_points(150, seed=3)
        assert mean_nn(clustered) < mean_nn(uniform)

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            clustered_points(10, clusters=0)
        with pytest.raises(InvalidParameterError):
            clustered_points(10, noise_fraction=1.5)

    def test_deterministic_given_seed(self):
        assert clustered_points(30, seed=9) == clustered_points(30, seed=9)


class TestGridAndHelpers:
    def test_grid_points_2d(self):
        points = grid_points(3, dims=2, step=2.0)
        assert len(points) == 9
        assert (0.0, 0.0) in points and (4.0, 4.0) in points

    def test_grid_points_1d_and_3d(self):
        assert len(grid_points(4, dims=1)) == 4
        assert len(grid_points(3, dims=3)) == 27

    def test_grid_points_invalid_dims(self):
        with pytest.raises(InvalidParameterError):
            grid_points(3, dims=4)

    def test_shuffled_is_permutation(self):
        points = uniform_points(40, seed=5)
        mixed = shuffled(points, seed=1)
        assert sorted(mixed) == sorted(points)
        assert mixed != points

    def test_normalise_unit_square(self):
        points = [(10.0, -5.0), (20.0, 5.0), (15.0, 0.0)]
        normalised = normalise_unit_square(points)
        assert all(0 <= c <= 1 for p in normalised for c in p)
        assert normalised[0] == (0.0, 0.0)
        assert normalised[1] == (1.0, 1.0)

    def test_normalise_empty(self):
        assert normalise_unit_square([]) == []

    def test_ring_points(self):
        import math

        points = ring_points(16, radius=2.0)
        assert len(points) == 16
        assert all(math.isclose(math.hypot(*p), 2.0, abs_tol=1e-9) for p in points)
