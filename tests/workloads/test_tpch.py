"""Tests for the synthetic TPC-H generator."""

import datetime as dt

import pytest

from repro.exceptions import InvalidParameterError
from repro.minidb import Database
from repro.workloads.tpch import TPCH_SCHEMAS, TPCHGenerator, load_tpch


class TestGenerator:
    def test_invalid_scale_factor(self):
        with pytest.raises(InvalidParameterError):
            TPCHGenerator(scale_factor=0)

    def test_cardinalities_scale_linearly(self):
        small = TPCHGenerator(scale_factor=0.001)
        large = TPCHGenerator(scale_factor=0.002)
        assert large.cardinality("customer") == 2 * small.cardinality("customer")
        assert small.cardinality("customer") == 150
        assert small.cardinality("orders") == 1500

    def test_fixed_tables_do_not_scale(self):
        gen = TPCHGenerator(scale_factor=0.001)
        assert gen.cardinality("nation") == 25
        assert gen.cardinality("region") == 5

    def test_generated_tables_match_schema_arity(self):
        data = TPCHGenerator(scale_factor=0.0005, seed=3).generate()
        for table, columns in TPCH_SCHEMAS.items():
            assert table in data.tables
            for row in data.tables[table][:20]:
                assert len(row) == len(columns)

    def test_deterministic_given_seed(self):
        a = TPCHGenerator(scale_factor=0.0005, seed=9).generate()
        b = TPCHGenerator(scale_factor=0.0005, seed=9).generate()
        assert a.tables["orders"] == b.tables["orders"]

    def test_orders_reference_existing_customers(self):
        data = TPCHGenerator(scale_factor=0.0005, seed=4).generate()
        customer_keys = {row[0] for row in data.tables["customer"]}
        assert all(row[1] in customer_keys for row in data.tables["orders"])

    def test_lineitems_reference_existing_orders(self):
        data = TPCHGenerator(scale_factor=0.0005, seed=4).generate()
        order_keys = {row[0] for row in data.tables["orders"]}
        assert all(row[0] in order_keys for row in data.tables["lineitem"])

    def test_dates_are_ordered_and_in_range(self):
        data = TPCHGenerator(scale_factor=0.0005, seed=4).generate()
        for row in data.tables["lineitem"][:200]:
            shipdate, receiptdate = row[6], row[7]
            assert isinstance(shipdate, dt.date)
            assert shipdate < receiptdate
            assert dt.date(1992, 1, 1) <= shipdate <= dt.date(1999, 6, 30)

    def test_total_rows_accounting(self):
        data = TPCHGenerator(scale_factor=0.0005, seed=4).generate()
        assert data.total_rows() == sum(data.row_count(t) for t in data.tables)


class TestLoadIntoDatabase:
    def test_load_creates_all_tables(self):
        db = Database()
        data = load_tpch(db, scale_factor=0.0005, seed=2)
        for table in TPCH_SCHEMAS:
            assert db.has_table(table)
            assert len(db.table(table)) == data.row_count(table)

    def test_load_twice_replaces_tables(self):
        db = Database()
        load_tpch(db, scale_factor=0.0005, seed=2)
        first = len(db.table("orders"))
        load_tpch(db, scale_factor=0.001, seed=2)
        assert len(db.table("orders")) == 2 * first

    def test_loaded_data_queryable(self):
        db = Database()
        load_tpch(db, scale_factor=0.0005, seed=2)
        count = db.execute("SELECT count(*) FROM customer").scalar()
        assert count == len(db.table("customer"))
        top = db.execute(
            "SELECT o_custkey, sum(o_totalprice) AS total FROM orders "
            "GROUP BY o_custkey ORDER BY total DESC LIMIT 5"
        )
        assert len(top.rows) <= 5
        totals = [row[1] for row in top.rows]
        assert totals == sorted(totals, reverse=True)
