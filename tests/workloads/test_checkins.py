"""Tests for the synthetic social check-in generator."""

import pytest

from repro.exceptions import InvalidParameterError
from repro.workloads.checkins import (
    CheckinConfig,
    checkin_points,
    generate_checkins,
)


class TestConfig:
    def test_defaults_are_valid(self):
        config = CheckinConfig()
        assert config.n_checkins > 0

    def test_invalid_sizes_rejected(self):
        with pytest.raises(InvalidParameterError):
            CheckinConfig(n_users=0)
        with pytest.raises(InvalidParameterError):
            CheckinConfig(noise_fraction=2.0)


class TestGeneration:
    def test_record_count_and_fields(self):
        config = CheckinConfig(n_checkins=500, n_users=50, seed=1)
        records = generate_checkins(config)
        assert len(records) == 500
        lat_lo, lat_hi = config.lat_range
        lon_lo, lon_hi = config.lon_range
        for r in records[:50]:
            assert 0 <= r.user_id < 50
            assert lat_lo <= r.latitude <= lat_hi
            assert lon_lo <= r.longitude <= lon_hi

    def test_deterministic_given_seed(self):
        a = generate_checkins(CheckinConfig(n_checkins=100, seed=5))
        b = generate_checkins(CheckinConfig(n_checkins=100, seed=5))
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_checkins(CheckinConfig(n_checkins=100, seed=5))
        b = generate_checkins(CheckinConfig(n_checkins=100, seed=6))
        assert a != b

    def test_timestamps_increase(self):
        records = generate_checkins(CheckinConfig(n_checkins=50, seed=2))
        times = [r.checkin_time for r in records]
        assert times == sorted(times)

    def test_checkin_points_extracts_coordinates(self):
        records = generate_checkins(CheckinConfig(n_checkins=20, seed=3))
        points = checkin_points(records)
        assert len(points) == 20
        assert points[0] == (records[0].latitude, records[0].longitude)

    def test_hotspot_structure_is_clustered(self):
        """Most check-ins should sit near one of the hotspot centres."""
        config = CheckinConfig(n_checkins=2000, hotspots=5, noise_fraction=0.05, seed=7)
        records = generate_checkins(config)
        points = checkin_points(records)
        # Compare the spread of the data with a uniform baseline: clustered
        # check-ins concentrate into a small fraction of 1-degree cells.
        cells = {(int(lat), int(lon)) for lat, lon in points}
        lat_span = config.lat_range[1] - config.lat_range[0]
        lon_span = config.lon_range[1] - config.lon_range[0]
        assert len(cells) < 0.25 * lat_span * lon_span
