"""Empty-index regressions: probes against zero-entry indexes stay well-defined.

The batch SGB path (and the kNN join) issue ``search_many`` probes that can
legally hit an index holding nothing yet — a grouper before its first
``add_batch``, an R-tree bulk-loaded from an empty batch.  Every index type
must answer with empty result lists (never raise, never return garbage), and
an empty bulk load must leave the index usable for later inserts.
"""

from __future__ import annotations

import pytest

from repro.core.pointset import HAVE_NUMPY
from repro.core.rectangle import Rect
from repro.core.sgb_any import SGBAnyGrouper
from repro.spatial.grid import GridIndex
from repro.spatial.kdtree import KDTree
from repro.spatial.rtree import RTree

FACTORIES = {
    "grid": lambda: GridIndex(cell_size=1.0),
    "kdtree": lambda: KDTree(dims=2),
    "rtree": lambda: RTree(max_entries=8),
}

WINDOWS = [
    Rect.from_point((0.0, 0.0), 1.0),
    Rect.from_point((5.0, 5.0), 2.0),
    Rect((-100.0, -100.0), (100.0, 100.0)),
]

BACKENDS = ["python"] + (["numpy"] if HAVE_NUMPY else [])


@pytest.mark.parametrize("kind", sorted(FACTORIES))
class TestEmptyIndexQueries:
    def test_search_returns_empty(self, kind):
        index = FACTORIES[kind]()
        for window in WINDOWS:
            assert index.search(window) == []

    def test_search_many_returns_one_empty_list_per_window(self, kind):
        index = FACTORIES[kind]()
        assert index.search_many(WINDOWS) == [[] for _ in WINDOWS]

    def test_search_many_with_no_windows(self, kind):
        index = FACTORIES[kind]()
        assert index.search_many([]) == []

    def test_search_many_above_the_kdtree_batch_cutoff(self, kind):
        # 20 windows exceeds the kd-tree's shared-traversal cutoff (16),
        # exercising the per-window fallback on an empty index too.
        windows = [Rect.from_point((float(i), 0.0), 0.5) for i in range(20)]
        assert FACTORIES[kind]().search_many(windows) == [[] for _ in windows]

    def test_empty_load_then_insert_keeps_working(self, kind):
        index = FACTORIES[kind]()
        index.load([], [])
        assert len(index) == 0
        assert index.search_many(WINDOWS) == [[] for _ in WINDOWS]
        index.insert(Rect.from_point((0.5, 0.5)), "payload")
        assert len(index) == 1
        assert index.search(WINDOWS[0]) == ["payload"]

    def test_delete_on_empty_index_reports_missing(self, kind):
        index = FACTORIES[kind]()
        assert index.delete(Rect.from_point((0.0, 0.0)), "ghost") is False
        assert len(index) == 0


class TestEmptyBulkLoad:
    def test_rtree_bulk_load_of_nothing_is_usable(self):
        tree = RTree.bulk_load([], [])
        assert len(tree) == 0
        assert tree.search(WINDOWS[2]) == []
        assert tree.search_many(WINDOWS) == [[] for _ in WINDOWS]
        tree.insert(Rect.from_point((1.0, 1.0)), 7)
        assert tree.search(WINDOWS[2]) == [7]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("kind", sorted(FACTORIES))
def test_grouper_probe_on_empty_explicit_index(kind, backend):
    """The batched FindCandidateGroups probe of a fresh grouper is empty.

    Exercised with every index type as the explicit access method and both
    PointSet backends feeding the probe batch.
    """
    from repro.core.pointset import PointSet

    grouper = SGBAnyGrouper(eps=0.5, index_factory=FACTORIES[kind])
    probes = PointSet.from_any([(0.0, 0.0), (3.0, 4.0)], backend=backend)
    assert grouper.neighbours_many(probes) == [[], []]
    # The grouper keeps working normally after the cold probe.
    grouper.add_batch(probes)
    assert grouper.finalize().groups == [[0], [1]]
