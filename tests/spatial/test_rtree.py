"""Tests for the Guttman R-tree."""

import random

import pytest

from repro.core.rectangle import Rect
from repro.exceptions import InvalidParameterError, SpatialIndexError
from repro.spatial.rtree import RTree


def brute_force_hits(entries, window):
    return {item for rect, item in entries if rect.intersects(window)}


class TestConstruction:
    def test_rejects_tiny_max_entries(self):
        with pytest.raises(InvalidParameterError):
            RTree(max_entries=3)

    def test_rejects_inconsistent_min_entries(self):
        with pytest.raises(InvalidParameterError):
            RTree(max_entries=8, min_entries=5)

    def test_empty_tree(self):
        tree = RTree()
        assert len(tree) == 0
        assert tree.search(Rect((0, 0), (10, 10))) == []


class TestInsertAndSearch:
    def test_single_entry(self):
        tree = RTree()
        tree.insert(Rect.from_point((1, 1)), "a")
        assert tree.search(Rect((0, 0), (2, 2))) == ["a"]
        assert tree.search(Rect((5, 5), (6, 6))) == []

    def test_point_convenience_helpers(self):
        tree = RTree()
        tree.insert_point((3, 3), "p")
        assert tree.window_query((3, 3), 0.5) == ["p"]

    def test_window_query_matches_brute_force_on_points(self):
        rng = random.Random(1)
        tree = RTree(max_entries=6)
        entries = []
        for i in range(300):
            p = (rng.uniform(0, 100), rng.uniform(0, 100))
            rect = Rect.from_point(p)
            tree.insert(rect, i)
            entries.append((rect, i))
        for _ in range(30):
            cx, cy = rng.uniform(0, 100), rng.uniform(0, 100)
            size = rng.uniform(1, 15)
            window = Rect((cx - size, cy - size), (cx + size, cy + size))
            assert set(tree.search(window)) == brute_force_hits(entries, window)

    def test_window_query_matches_brute_force_on_rectangles(self):
        rng = random.Random(2)
        tree = RTree(max_entries=5)
        entries = []
        for i in range(200):
            x, y = rng.uniform(0, 100), rng.uniform(0, 100)
            rect = Rect((x, y), (x + rng.uniform(0, 5), y + rng.uniform(0, 5)))
            tree.insert(rect, i)
            entries.append((rect, i))
        for _ in range(30):
            x, y = rng.uniform(0, 100), rng.uniform(0, 100)
            window = Rect((x, y), (x + 10, y + 10))
            assert set(tree.search(window)) == brute_force_hits(entries, window)

    def test_search_entries_returns_rects(self):
        tree = RTree()
        rect = Rect.from_point((2, 2), 1)
        tree.insert(rect, "x")
        hits = tree.search_entries(Rect((0, 0), (5, 5)))
        assert hits == [(rect, "x")]

    def test_duplicate_payload_positions_allowed(self):
        tree = RTree()
        for i in range(20):
            tree.insert(Rect.from_point((1, 1)), i)
        assert len(tree) == 20
        assert set(tree.search(Rect((0, 0), (2, 2)))) == set(range(20))

    def test_tree_grows_in_height(self):
        tree = RTree(max_entries=4)
        for i in range(100):
            tree.insert(Rect.from_point((i % 10, i // 10)), i)
        assert tree.height() >= 2
        tree.check_invariants()


class TestInvariants:
    def test_invariants_hold_after_random_inserts(self):
        rng = random.Random(7)
        tree = RTree(max_entries=6)
        for i in range(500):
            tree.insert(Rect.from_point((rng.random(), rng.random())), i)
        tree.check_invariants()
        assert len(tree) == 500

    def test_items_iterates_everything(self):
        tree = RTree(max_entries=4)
        for i in range(50):
            tree.insert(Rect.from_point((i, i)), i)
        assert sorted(item for _, item in tree.items()) == list(range(50))


class TestDelete:
    def test_delete_existing_entry(self):
        tree = RTree()
        rect = Rect.from_point((1, 1), 0.5)
        tree.insert(rect, "a")
        assert tree.delete(rect, "a") is True
        assert len(tree) == 0
        assert tree.search(Rect((0, 0), (2, 2))) == []

    def test_delete_missing_entry_returns_false(self):
        tree = RTree()
        tree.insert(Rect.from_point((1, 1)), "a")
        assert tree.delete(Rect.from_point((5, 5)), "b") is False
        assert len(tree) == 1

    def test_delete_then_query_consistency(self):
        rng = random.Random(9)
        tree = RTree(max_entries=5)
        entries = []
        for i in range(200):
            rect = Rect.from_point((rng.uniform(0, 50), rng.uniform(0, 50)))
            tree.insert(rect, i)
            entries.append((rect, i))
        removed = set()
        for rect, item in entries[::3]:
            assert tree.delete(rect, item)
            removed.add(item)
        tree.check_invariants()
        window = Rect((0, 0), (50, 50))
        assert set(tree.search(window)) == {i for _, i in entries if i not in removed}

    def test_delete_everything_leaves_empty_tree(self):
        tree = RTree(max_entries=4)
        entries = []
        for i in range(40):
            rect = Rect.from_point((i % 7, i % 5))
            tree.insert(rect, i)
            entries.append((rect, i))
        for rect, item in entries:
            assert tree.delete(rect, item)
        assert len(tree) == 0
        assert tree.search(Rect((-10, -10), (10, 10))) == []


class TestNearest:
    def test_nearest_point(self):
        tree = RTree()
        tree.insert_point((0, 0), "origin")
        tree.insert_point((10, 10), "far")
        assert tree.nearest((1, 1)) == "origin"
        assert tree.nearest((9, 9)) == "far"

    def test_nearest_on_empty_tree_raises(self):
        with pytest.raises(SpatialIndexError):
            RTree().nearest((0, 0))

    def test_nearest_matches_brute_force(self):
        rng = random.Random(4)
        tree = RTree(max_entries=6)
        pts = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(100)]
        for i, p in enumerate(pts):
            tree.insert_point(p, i)
        for _ in range(20):
            q = (rng.uniform(0, 10), rng.uniform(0, 10))
            expected = min(range(len(pts)), key=lambda i: (pts[i][0] - q[0]) ** 2 + (pts[i][1] - q[1]) ** 2)
            got = tree.nearest(q)
            d_expected = (pts[expected][0] - q[0]) ** 2 + (pts[expected][1] - q[1]) ** 2
            d_got = (pts[got][0] - q[0]) ** 2 + (pts[got][1] - q[1]) ** 2
            assert d_got == pytest.approx(d_expected)


class TestBulkLoad:
    """STR bulk loading: same invariants and query answers as insert()."""

    @pytest.mark.parametrize("n", [0, 1, 5, 8, 9, 17, 64, 65, 300])
    def test_invariants_and_count_at_many_sizes(self, n):
        rng = random.Random(n)
        rects = [Rect.from_point((rng.uniform(0, 100), rng.uniform(0, 100))) for _ in range(n)]
        tree = RTree.bulk_load(rects, range(n), max_entries=8)
        assert len(tree) == n
        tree.check_invariants()

    def test_search_matches_brute_force_on_points(self):
        rng = random.Random(21)
        entries = []
        for i in range(500):
            rect = Rect.from_point((rng.uniform(0, 100), rng.uniform(0, 100)))
            entries.append((rect, i))
        tree = RTree.bulk_load([r for r, _ in entries], [i for _, i in entries])
        tree.check_invariants()
        for _ in range(40):
            cx, cy = rng.uniform(0, 100), rng.uniform(0, 100)
            size = rng.uniform(1, 15)
            window = Rect((cx - size, cy - size), (cx + size, cy + size))
            assert set(tree.search(window)) == brute_force_hits(entries, window)

    def test_search_matches_brute_force_on_rectangles(self):
        rng = random.Random(22)
        entries = []
        for i in range(300):
            lo = (rng.uniform(0, 90), rng.uniform(0, 90))
            hi = (lo[0] + rng.uniform(0, 8), lo[1] + rng.uniform(0, 8))
            entries.append((Rect(lo, hi), i))
        tree = RTree.bulk_load([r for r, _ in entries], [i for _, i in entries], max_entries=6)
        tree.check_invariants()
        for _ in range(30):
            cx, cy = rng.uniform(0, 100), rng.uniform(0, 100)
            window = Rect((cx - 6, cy - 6), (cx + 6, cy + 6))
            assert set(tree.search(window)) == brute_force_hits(entries, window)

    def test_three_dimensional_bulk_load(self):
        rng = random.Random(23)
        entries = []
        for i in range(200):
            p = tuple(rng.uniform(0, 10) for _ in range(3))
            entries.append((Rect.from_point(p), i))
        tree = RTree.bulk_load([r for r, _ in entries], [i for _, i in entries])
        tree.check_invariants()
        window = Rect((2.0,) * 3, (7.0,) * 3)
        assert set(tree.search(window)) == brute_force_hits(entries, window)

    def test_incremental_insert_and_delete_after_bulk_load(self):
        rng = random.Random(24)
        rects = [Rect.from_point((rng.uniform(0, 50), rng.uniform(0, 50))) for _ in range(120)]
        tree = RTree.bulk_load(rects, range(120))
        tree.insert(Rect.from_point((25.0, 25.0)), "new")
        tree.check_invariants()
        assert "new" in tree.search(Rect((24.5, 24.5), (25.5, 25.5)))
        assert tree.delete(rects[3], 3)
        tree.check_invariants()
        assert 3 not in tree.search(rects[3])
        assert len(tree) == 120  # 120 originals - 1 deleted + 1 inserted

    def test_bulk_load_is_packed_lower_than_incremental(self):
        rng = random.Random(25)
        rects = [Rect.from_point((rng.uniform(0, 100), rng.uniform(0, 100))) for _ in range(600)]
        packed = RTree.bulk_load(rects, range(600), max_entries=8)
        incremental = RTree(max_entries=8)
        for i, r in enumerate(rects):
            incremental.insert(r, i)
        assert packed.height() <= incremental.height()

    def test_load_requires_empty_tree(self):
        tree = RTree()
        tree.insert(Rect.from_point((0.0, 0.0)), "x")
        with pytest.raises(SpatialIndexError):
            tree.load([Rect.from_point((1.0, 1.0))], ["y"])
