"""Tests for the uniform grid index."""

import random

import pytest

from repro.core.rectangle import Rect
from repro.exceptions import InvalidParameterError
from repro.spatial.grid import GridIndex


class TestConstruction:
    def test_rejects_non_positive_cell_size(self):
        with pytest.raises(InvalidParameterError):
            GridIndex(cell_size=0.0)

    def test_empty_index(self):
        grid = GridIndex(1.0)
        assert len(grid) == 0
        assert grid.search(Rect((0, 0), (10, 10))) == []


class TestInsertSearchDelete:
    def test_point_entries(self):
        grid = GridIndex(1.0)
        grid.insert_point((0.5, 0.5), "a")
        grid.insert_point((5.5, 5.5), "b")
        assert grid.search(Rect((0, 0), (1, 1))) == ["a"]
        assert set(grid.search(Rect((0, 0), (10, 10)))) == {"a", "b"}

    def test_entry_spanning_multiple_cells_reported_once(self):
        grid = GridIndex(1.0)
        rect = Rect((0.2, 0.2), (3.8, 0.8))  # spans 4 cells horizontally
        grid.insert(rect, "wide")
        hits = grid.search(Rect((0, 0), (5, 1)))
        assert hits == ["wide"]

    def test_negative_coordinates(self):
        grid = GridIndex(0.5)
        grid.insert_point((-1.3, -2.7), "neg")
        assert grid.search(Rect((-2, -3), (-1, -2))) == ["neg"]

    def test_search_matches_brute_force(self):
        rng = random.Random(3)
        grid = GridIndex(0.7)
        entries = []
        for i in range(300):
            p = (rng.uniform(-10, 10), rng.uniform(-10, 10))
            rect = Rect.from_point(p, rng.uniform(0, 0.5))
            grid.insert(rect, i)
            entries.append((rect, i))
        for _ in range(30):
            cx, cy = rng.uniform(-10, 10), rng.uniform(-10, 10)
            window = Rect((cx - 2, cy - 2), (cx + 2, cy + 2))
            expected = {i for rect, i in entries if rect.intersects(window)}
            assert set(grid.search(window)) == expected

    def test_delete(self):
        grid = GridIndex(1.0)
        rect = Rect.from_point((1.5, 1.5), 0.2)
        grid.insert(rect, "x")
        assert grid.delete(rect, "x") is True
        assert len(grid) == 0
        assert grid.search(Rect((0, 0), (3, 3))) == []

    def test_delete_missing_returns_false(self):
        grid = GridIndex(1.0)
        assert grid.delete(Rect.from_point((0, 0)), "missing") is False

    def test_window_query_helper(self):
        grid = GridIndex(0.5)
        grid.insert_point((2.0, 2.0), "p")
        assert grid.window_query((2.1, 2.1), 0.3) == ["p"]
        assert grid.window_query((5.0, 5.0), 0.3) == []


class TestSearchMany:
    def test_batched_queries_match_individual_searches(self):
        rng = random.Random(31)
        grid = GridIndex(cell_size=2.0)
        for i in range(400):
            grid.insert(Rect.from_point((rng.uniform(0, 50), rng.uniform(0, 50))), i)
        windows = [
            Rect((c - 3, c - 3), (c + 3, c + 3))
            for c in (rng.uniform(0, 50) for _ in range(25))
        ]
        batched = grid.search_many(windows)
        assert len(batched) == len(windows)
        for window, hits in zip(windows, batched):
            assert set(hits) == set(grid.search(window))

    def test_search_many_with_overlapping_windows_deduplicates_per_window(self):
        grid = GridIndex(cell_size=1.0)
        big = Rect((0.0, 0.0), (3.0, 3.0))
        grid.insert(big, "wide")
        windows = [Rect((0.0, 0.0), (2.0, 2.0)), Rect((1.0, 1.0), (3.0, 3.0))]
        results = grid.search_many(windows)
        assert results == [["wide"], ["wide"]]

    def test_search_many_empty_inputs(self):
        grid = GridIndex(cell_size=1.0)
        assert grid.search_many([]) == []
        assert grid.search_many([Rect((0, 0), (1, 1))]) == [[]]
