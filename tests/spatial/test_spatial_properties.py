"""Property-based tests: every spatial index must answer window queries exactly."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rectangle import Rect
from repro.spatial.grid import GridIndex
from repro.spatial.kdtree import KDTree
from repro.spatial.rtree import RTree

coordinate = st.floats(min_value=0, max_value=50, allow_nan=False, allow_infinity=False)
point = st.tuples(coordinate, coordinate)
point_list = st.lists(point, min_size=0, max_size=60)
window_spec = st.tuples(point, st.floats(min_value=0.1, max_value=10))


def _window(spec):
    (cx, cy), radius = spec
    return Rect((cx - radius, cy - radius), (cx + radius, cy + radius))


@settings(max_examples=60, deadline=None)
@given(pts=point_list, spec=window_spec)
def test_rtree_window_query_is_exact(pts, spec):
    tree = RTree(max_entries=4)
    for i, p in enumerate(pts):
        tree.insert_point(p, i)
    window = _window(spec)
    expected = {i for i, p in enumerate(pts) if window.contains_point(p)}
    assert set(tree.search(window)) == expected


@settings(max_examples=60, deadline=None)
@given(pts=point_list, spec=window_spec)
def test_grid_window_query_is_exact(pts, spec):
    grid = GridIndex(cell_size=1.3)
    for i, p in enumerate(pts):
        grid.insert_point(p, i)
    window = _window(spec)
    expected = {i for i, p in enumerate(pts) if window.contains_point(p)}
    assert set(grid.search(window)) == expected


@settings(max_examples=60, deadline=None)
@given(pts=point_list, spec=window_spec)
def test_kdtree_window_query_is_exact(pts, spec):
    tree = KDTree()
    for i, p in enumerate(pts):
        tree.insert_point(p, i)
    window = _window(spec)
    expected = {i for i, p in enumerate(pts) if window.contains_point(p)}
    assert set(tree.search(window)) == expected


@settings(max_examples=40, deadline=None)
@given(pts=st.lists(point, min_size=1, max_size=60), spec=window_spec, data=st.data())
def test_rtree_stays_exact_after_deletions(pts, spec, data):
    tree = RTree(max_entries=4)
    rects = []
    for i, p in enumerate(pts):
        rect = Rect.from_point(p)
        tree.insert(rect, i)
        rects.append(rect)
    to_delete = data.draw(
        st.lists(st.integers(min_value=0, max_value=len(pts) - 1), unique=True, max_size=len(pts))
    )
    for i in to_delete:
        assert tree.delete(rects[i], i)
    tree.check_invariants()
    window = _window(spec)
    survivors = set(range(len(pts))) - set(to_delete)
    expected = {i for i in survivors if window.contains_point(pts[i])}
    assert set(tree.search(window)) == expected
