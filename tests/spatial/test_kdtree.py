"""Tests for the kd-tree point index."""

import random

import pytest

from repro.core.rectangle import Rect
from repro.exceptions import InvalidParameterError
from repro.spatial.kdtree import KDTree


class TestConstruction:
    def test_rejects_bad_dims(self):
        with pytest.raises(InvalidParameterError):
            KDTree(dims=0)

    def test_empty_tree(self):
        tree = KDTree()
        assert len(tree) == 0
        assert tree.search(Rect((0, 0), (1, 1))) == []


class TestInsertSearch:
    def test_single_point(self):
        tree = KDTree()
        tree.insert_point((1, 2), "a")
        assert tree.search(Rect((0, 0), (2, 3))) == ["a"]
        assert tree.search(Rect((5, 5), (6, 6))) == []

    def test_dimension_mismatch_rejected(self):
        tree = KDTree(dims=2)
        with pytest.raises(InvalidParameterError):
            tree.insert_point((1, 2, 3), "bad")

    def test_rect_insert_uses_center(self):
        tree = KDTree()
        tree.insert(Rect((0, 0), (2, 2)), "centered")
        assert tree.search(Rect((0.9, 0.9), (1.1, 1.1))) == ["centered"]

    def test_search_matches_brute_force(self):
        rng = random.Random(8)
        tree = KDTree()
        pts = [(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(400)]
        for i, p in enumerate(pts):
            tree.insert_point(p, i)
        for _ in range(40):
            cx, cy = rng.uniform(0, 100), rng.uniform(0, 100)
            window = Rect((cx - 8, cy - 8), (cx + 8, cy + 8))
            expected = {i for i, p in enumerate(pts) if window.contains_point(p)}
            assert set(tree.search(window)) == expected

    def test_boundary_points_included(self):
        tree = KDTree()
        tree.insert_point((1.0, 1.0), "edge")
        assert tree.search(Rect((1.0, 1.0), (2.0, 2.0))) == ["edge"]
        assert tree.search(Rect((0.0, 0.0), (1.0, 1.0))) == ["edge"]

    def test_three_dimensional_tree(self):
        tree = KDTree(dims=3)
        tree.insert_point((1, 2, 3), "p")
        tree.insert_point((5, 5, 5), "q")
        assert tree.search(Rect((0, 0, 0), (4, 4, 4))) == ["p"]


class TestDelete:
    def test_delete_tombstones_entry(self):
        tree = KDTree()
        tree.insert_point((1, 1), "a")
        tree.insert_point((2, 2), "b")
        assert tree.delete(Rect((0, 0), (1.5, 1.5)), "a") is True
        assert len(tree) == 1
        assert tree.search(Rect((0, 0), (3, 3))) == ["b"]

    def test_delete_missing_returns_false(self):
        tree = KDTree()
        tree.insert_point((1, 1), "a")
        assert tree.delete(Rect((5, 5), (6, 6)), "a") is False


class TestSearchMany:
    # 10 windows exercises the shared union traversal; 25 the per-window
    # fallback for large batches.
    @pytest.mark.parametrize("n_windows", [10, 25])
    def test_batched_queries_match_individual_searches(self, n_windows):
        rng = random.Random(32)
        tree = KDTree(dims=2)
        for i in range(400):
            tree.insert_point((rng.uniform(0, 50), rng.uniform(0, 50)), i)
        windows = [
            Rect((c - 3, c - 3), (c + 3, c + 3))
            for c in (rng.uniform(0, 50) for _ in range(n_windows))
        ]
        batched = tree.search_many(windows)
        assert len(batched) == len(windows)
        for window, hits in zip(windows, batched):
            assert set(hits) == set(tree.search(window))

    def test_search_many_skips_dead_entries(self):
        tree = KDTree(dims=2)
        tree.insert_point((1.0, 1.0), "a")
        tree.insert_point((2.0, 2.0), "b")
        tree.delete(Rect.from_point((1.0, 1.0)), "a")
        [hits] = tree.search_many([Rect((0.0, 0.0), (3.0, 3.0))])
        assert hits == ["b"]

    def test_search_many_empty_inputs(self):
        tree = KDTree(dims=2)
        assert tree.search_many([]) == []
        assert tree.search_many([Rect((0, 0), (1, 1))]) == [[]]
