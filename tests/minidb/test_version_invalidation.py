"""Every mutation path bumps Table.version; staleness regressions.

The mutation counter is the single invalidation token for three derived
artifacts: the planner-statistics cache, the content fingerprints keying the
tiered result cache, and the durable catalog's dirty check.  A mutation path
that forgets to bump it would silently serve stale results — these tests pin
each of those failure modes.
"""

from __future__ import annotations

import pytest

from repro.minidb import Database
from repro.storage.cache import ResultCache, reset_default_cache


@pytest.fixture(autouse=True)
def isolated_cache_env(monkeypatch):
    monkeypatch.delenv("SGB_CACHE", raising=False)
    reset_default_cache()
    yield
    reset_default_cache()


def points_db(cache=None):
    db = Database(cache=cache)
    db.execute("CREATE TABLE pts (x FLOAT, y FLOAT)")
    db.execute("INSERT INTO pts VALUES (0.0, 0.0), (0.5, 0.5), (5.0, 5.0)")
    return db


SGB_SQL = "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1"


class TestEveryMutationPathBumpsVersion:
    def test_insert(self):
        db = points_db()
        table = db.table("pts")
        before = table.version
        table.insert((9.0, 9.0))
        assert table.version == before + 1

    def test_insert_many(self):
        db = points_db()
        table = db.table("pts")
        before = table.version
        table.insert_many([(9.0, 9.0), (9.1, 9.1)])
        assert table.version == before + 2

    def test_sql_insert(self):
        db = points_db()
        before = db.table("pts").version
        db.execute("INSERT INTO pts VALUES (9.0, 9.0), (8.0, 8.0)")
        assert db.table("pts").version == before + 2

    def test_insert_rows_facade(self):
        db = points_db()
        before = db.table("pts").version
        db.insert_rows("pts", [(1.0, 1.0)])
        assert db.table("pts").version == before + 1

    def test_truncate(self):
        db = points_db()
        table = db.table("pts")
        before = table.version
        table.truncate()
        assert table.version == before + 1

    def test_adopt_rows_restores_not_counts(self):
        db = Database()
        table = db.create_table("t", [("x", "FLOAT")])
        table.adopt_rows([(1.0,), (2.0,)], version=17)
        assert table.version == 17

    def test_failed_insert_does_not_bump(self):
        db = points_db()
        table = db.table("pts")
        before = table.version
        with pytest.raises(Exception):
            table.insert((1.0,))  # arity mismatch
        assert table.version == before


class TestStaleStatsRegression:
    def test_stats_recollected_after_insert(self):
        db = points_db()
        table = db.table("pts")
        assert table.point_stats((0, 1)).count == 3
        table.insert((9.0, 9.0))
        assert table.point_stats((0, 1)).count == 4

    def test_stats_recollected_after_truncate(self):
        db = points_db()
        table = db.table("pts")
        table.point_stats((0, 1))
        table.truncate()
        assert table.point_stats((0, 1)).count == 0

    def test_unchanged_table_reuses_cached_stats(self):
        db = points_db()
        table = db.table("pts")
        first = table.point_stats((0, 1))
        assert table.point_stats((0, 1)) is first


class TestStaleFingerprintRegression:
    def test_fingerprint_changes_after_insert(self):
        db = points_db()
        table = db.table("pts")
        before = table.point_fingerprint((0, 1))
        assert table.point_fingerprint((0, 1)) == before  # memoised
        table.insert((9.0, 9.0))
        assert table.point_fingerprint((0, 1)) != before

    def test_fingerprint_changes_after_truncate(self):
        db = points_db()
        table = db.table("pts")
        before = table.point_fingerprint((0, 1))
        table.truncate()
        assert table.point_fingerprint((0, 1)) != before


class TestStaleCacheRegression:
    def test_insert_between_identical_queries_misses(self):
        """The stale-cache scenario: mutate, re-ask, and the answer must move."""
        cache = ResultCache.memory()
        db = points_db(cache=cache)
        first = db.execute(SGB_SQL).rows
        db.execute("INSERT INTO pts VALUES (0.2, 0.2)")
        second = db.execute(SGB_SQL).rows
        assert cache.hits == 0 and cache.puts == 2  # no false hit across versions
        assert sorted(first) != sorted(second)

    def test_unchanged_table_hits(self):
        cache = ResultCache.memory()
        db = points_db(cache=cache)
        first = db.execute(SGB_SQL).rows
        second = db.execute(SGB_SQL).rows
        assert cache.hits == 1
        assert first == second

    def test_truncate_and_reinsert_same_rows_hits_again(self):
        """Content addressing: identical content maps back to the same key."""
        cache = ResultCache.memory()
        db = points_db(cache=cache)
        first = db.execute(SGB_SQL).rows
        db.table("pts").truncate()
        db.execute("INSERT INTO pts VALUES (0.0, 0.0), (0.5, 0.5), (5.0, 5.0)")
        second = db.execute(SGB_SQL).rows
        assert cache.hits == 1  # same bytes, same key, legitimate hit
        assert first == second

    def test_join_cache_invalidated_by_either_side(self):
        cache = ResultCache.memory()
        db = Database(cache=cache)
        db.execute("CREATE TABLE a (x FLOAT, y FLOAT)")
        db.execute("CREATE TABLE b (x FLOAT, y FLOAT)")
        db.execute("INSERT INTO a VALUES (0.0, 0.0), (1.0, 1.0)")
        db.execute("INSERT INTO b VALUES (0.1, 0.1), (5.0, 5.0)")
        sql = (
            "SELECT count(*) FROM a SIMILARITY JOIN b "
            "ON DISTANCE(a.x, a.y, b.x, b.y) WITHIN 0.5"
        )
        first = db.execute(sql).scalar()
        db.execute("INSERT INTO b VALUES (1.05, 1.05)")
        second = db.execute(sql).scalar()
        assert cache.hits == 0 and cache.puts == 2
        assert second == first + 1
