"""Tests for heap tables and the catalog."""

import pytest

from repro.exceptions import CatalogError, SchemaError
from repro.minidb.catalog import Catalog
from repro.minidb.schema import Schema
from repro.minidb.table import Table


@pytest.fixture
def table():
    schema = Schema.from_pairs([("id", "INT"), ("name", "TEXT"), ("score", "FLOAT")])
    return Table("players", schema)


class TestTable:
    def test_insert_coerces_values(self, table):
        table.insert((1, "alice", 3))
        assert table.rows[0] == (1, "alice", 3.0)
        assert isinstance(table.rows[0][2], float)

    def test_insert_wrong_arity_raises(self, table):
        with pytest.raises(SchemaError):
            table.insert((1, "alice"))

    def test_insert_bad_type_raises(self, table):
        with pytest.raises(SchemaError):
            table.insert(("x", "alice", 1.0))

    def test_insert_many_counts(self, table):
        count = table.insert_many([(1, "a", 0.1), (2, "b", 0.2)])
        assert count == 2
        assert len(table) == 2

    def test_nulls_allowed(self, table):
        table.insert((1, None, None))
        assert table.rows[0] == (1, None, None)

    def test_truncate(self, table):
        table.insert((1, "a", 0.0))
        table.truncate()
        assert len(table) == 0

    def test_iteration(self, table):
        table.insert((1, "a", 0.0))
        table.insert((2, "b", 1.0))
        assert [row[0] for row in table] == [1, 2]


class TestCatalog:
    def test_create_and_get(self):
        catalog = Catalog()
        catalog.create_table("t", [("a", "INT")])
        assert catalog.has_table("t")
        assert catalog.get_table("T").name == "t"

    def test_duplicate_create_raises(self):
        catalog = Catalog()
        catalog.create_table("t", [("a", "INT")])
        with pytest.raises(CatalogError):
            catalog.create_table("T", [("a", "INT")])

    def test_drop(self):
        catalog = Catalog()
        catalog.create_table("t", [("a", "INT")])
        catalog.drop_table("t")
        assert not catalog.has_table("t")

    def test_drop_missing_raises(self):
        with pytest.raises(CatalogError):
            Catalog().drop_table("ghost")

    def test_get_missing_raises(self):
        with pytest.raises(CatalogError):
            Catalog().get_table("ghost")

    def test_table_names_sorted(self):
        catalog = Catalog()
        catalog.create_table("zeta", [("a", "INT")])
        catalog.create_table("alpha", [("a", "INT")])
        assert catalog.table_names() == ["alpha", "zeta"]

    def test_table_schema_qualified_by_table_name(self):
        catalog = Catalog()
        table = catalog.create_table("orders", [("o_id", "INT")])
        assert table.schema.index_of("o_id", "orders") == 0
