"""Shard-level aggregate push-down: exact state merging vs the row replay."""

from __future__ import annotations

import random

import pytest

from repro.minidb.database import Database
from repro.minidb.exec.pushdown import (
    columns_eligible,
    pushdown_eligible,
    sgb_any_pushdown,
)
from repro.minidb.functions import create_aggregate


def _make_db(values="int", n=400, seed=42) -> Database:
    value_type = "INT" if values == "int" else "FLOAT"
    db = Database()
    db.create_table("t", [("x", "FLOAT"), ("y", "FLOAT"), ("v", value_type)])
    rng = random.Random(seed)
    rows = []
    for _ in range(n):
        v = rng.randrange(-50, 50) if values == "int" else rng.uniform(0, 1)
        rows.append((rng.uniform(0, 15), rng.uniform(0, 15), v))
    db.insert_rows("t", rows)
    return db


INT_QUERY = (
    "SELECT x, y, count(*) AS c, count(v) AS cv, sum(v) AS s, avg(v) AS a, "
    "min(v) AS lo, max(v) AS hi "
    "FROM t GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.8{workers} ORDER BY x, y"
)


class TestMergedEqualsReplay:
    @pytest.mark.parametrize("seed", [7, 23, 61])
    def test_randomized_parallel_matches_serial(self, seed):
        # Serial runs the replay path, WORKERS 2 runs push-down (verified
        # below by the spy test); the rows must be bit-identical.
        serial = _make_db(seed=seed).execute(INT_QUERY.format(workers=""))
        pushed = _make_db(seed=seed).execute(INT_QUERY.format(workers=" WORKERS 2"))
        assert pushed.rows == serial.rows

    def test_pushdown_actually_engages_for_int_aggregates(self, monkeypatch):
        import repro.minidb.exec.sgb as sgb_module

        calls = []
        real = sgb_module.sgb_any_pushdown

        def spy(*args, **kwargs):
            result = real(*args, **kwargs)
            calls.append(result is not None)
            return result

        monkeypatch.setattr(sgb_module, "sgb_any_pushdown", spy)
        _make_db().execute(INT_QUERY.format(workers=" WORKERS 2"))
        assert calls == [True]

    def test_float_sum_stays_on_replay_path(self, monkeypatch):
        # Float addition is order-sensitive, so sum/avg over FLOAT columns
        # must never attempt state merging — the runtime gate bails before
        # sgb_any_pushdown is even called.
        import repro.minidb.exec.sgb as sgb_module

        calls = []
        monkeypatch.setattr(
            sgb_module, "sgb_any_pushdown",
            lambda *a, **k: calls.append(True) or None,
        )
        db = _make_db(values="float")
        serial = db.execute(INT_QUERY.format(workers=""))
        parallel = db.execute(INT_QUERY.format(workers=" WORKERS 2"))
        assert calls == []
        assert parallel.rows == serial.rows

    def test_float_min_max_count_still_push_down(self):
        # min/max/count are order-free for floats too; only the additive
        # aggregates need the int gate.
        query = (
            "SELECT x, y, count(*) AS c, min(v) AS lo, max(v) AS hi "
            "FROM t GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.8{workers} "
            "ORDER BY x, y"
        )
        db = _make_db(values="float")
        serial = db.execute(query.format(workers=""))
        parallel = db.execute(query.format(workers=" WORKERS 2"))
        assert parallel.rows == serial.rows

    def test_array_agg_never_pushes_down(self, monkeypatch):
        # Order-sensitive aggregate: the static gate refuses it.
        import repro.minidb.exec.sgb as sgb_module

        calls = []
        monkeypatch.setattr(
            sgb_module, "sgb_any_pushdown",
            lambda *a, **k: calls.append(True) or None,
        )
        query = (
            "SELECT x, y, array_agg(v) AS vs FROM t "
            "GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.8 WORKERS 2 ORDER BY x, y"
        )
        db = _make_db()
        assert db.execute(query).rows
        assert calls == []

    def test_sgb_all_eliminate_stays_row_at_a_time(self, monkeypatch):
        # SGB-All (including ELIMINATE) groups serially and replays rows;
        # push-down must never trigger regardless of WORKERS.
        import repro.minidb.exec.sgb as sgb_module

        calls = []
        monkeypatch.setattr(
            sgb_module, "sgb_any_pushdown",
            lambda *a, **k: calls.append(True) or None,
        )
        query = (
            "SELECT x, y, count(*) AS c, sum(v) AS s FROM t GROUP BY x, y "
            "DISTANCE-TO-ALL L2 WITHIN 0.8 ON-OVERLAP ELIMINATE{workers} "
            "ORDER BY x, y"
        )
        serial = _make_db().execute(query.format(workers=""))
        parallel = _make_db().execute(query.format(workers=" WORKERS 2"))
        assert calls == []
        assert parallel.rows == serial.rows


class TestPartialStateProtocol:
    @pytest.mark.parametrize("func", ["count", "sum", "avg", "min", "max"])
    def test_random_partition_merge_equals_replay(self, func):
        rng = random.Random(101)
        values = [rng.randrange(-100, 100) for _ in range(200)]
        for trial in range(5):
            replay = create_aggregate(func)
            replay.step_many(values)

            cut = rng.randrange(1, len(values))
            merged = create_aggregate(func)
            for chunk in (values[:cut], values[cut:]):
                part = create_aggregate(func)
                part.step_many(chunk)
                merged.absorb(part.partial())
            assert merged.final() == replay.final()

    def test_count_star_merges_constant_steps(self):
        merged = create_aggregate("count", star=True)
        for n in (3, 0, 7):
            part = create_aggregate("count", star=True)
            part.step_count(n)
            merged.absorb(part.partial())
        assert merged.final() == 10

    def test_empty_partial_absorbs_as_identity(self):
        expected = {"sum": 6, "min": 1, "max": 3}
        for func, result in expected.items():
            merged = create_aggregate(func)
            merged.step_many([1, 2, 3])
            empty = create_aggregate(func)
            merged.absorb(empty.partial())
            assert merged.final() == result

    def test_non_mergeable_aggregates_raise(self):
        from repro.exceptions import AggregateError

        acc = create_aggregate("array_agg")
        with pytest.raises(AggregateError):
            acc.partial()
        with pytest.raises(AggregateError):
            acc.absorb([1])


class TestEligibilityGates:
    def test_static_gate(self):
        from repro.minidb.exec.aggregate import AggregateSpec

        ok = [AggregateSpec("count", [], True, "c"), AggregateSpec("sum", [], False, "s")]
        assert pushdown_eligible(ok)
        bad = ok + [AggregateSpec("array_agg", [], False, "v")]
        assert not pushdown_eligible(bad)
        assert not pushdown_eligible([AggregateSpec("st_polygon", [], False, "p")])

    def test_runtime_gate_rejects_floats_and_bools(self):
        from repro.minidb.exec.aggregate import AggregateSpec

        specs = [AggregateSpec("sum", [], False, "s")]
        assert columns_eligible(specs, [[1, 2, None, 3]])
        assert not columns_eligible(specs, [[1, 2.5, 3]])
        assert not columns_eligible(specs, [[1, True, 3]])
        # Non-additive aggregates ignore the value types entirely.
        minmax = [AggregateSpec("min", [], False, "lo")]
        assert columns_eligible(minmax, [[1.5, 2.5]])

    def test_direct_pushdown_degrades_to_none_when_serial(self):
        from repro.core.pointset import PointSet
        from repro.minidb.exec.aggregate import AggregateSpec

        points = PointSet.from_any([(0.0, 0.0), (1.0, 1.0)])
        specs = [AggregateSpec("count", [], True, "c")]
        # Two points plan serial: the caller's replay path must take over.
        assert sgb_any_pushdown(points, 0.5, "L2", 2, specs, [None]) is None
