"""Tests for expression compilation and evaluation."""

import datetime as dt

import pytest

from repro.exceptions import ExecutionError, PlanningError
from repro.minidb.expressions import (
    Between,
    BinaryOp,
    ColumnRef,
    FuncCall,
    InList,
    InSet,
    IntervalLiteral,
    IsNull,
    Literal,
    Star,
    UnaryOp,
    compile_expression,
    contains_aggregate,
    expression_name,
    extract_aggregates,
)
from repro.minidb.schema import Schema

SCHEMA = Schema.from_pairs(
    [("a", "INT"), ("b", "FLOAT"), ("name", "TEXT"), ("d", "DATE")], qualifier="t"
)
ROW = (3, 2.5, "hello", dt.date(1995, 6, 15))


def evaluate(expr, row=ROW, schema=SCHEMA):
    return compile_expression(expr, schema)(row)


class TestBasicEvaluation:
    def test_literal(self):
        assert evaluate(Literal(42)) == 42

    def test_column_ref_unqualified_and_qualified(self):
        assert evaluate(ColumnRef("a")) == 3
        assert evaluate(ColumnRef("b", "t")) == 2.5

    def test_arithmetic(self):
        expr = BinaryOp("+", ColumnRef("a"), BinaryOp("*", ColumnRef("b"), Literal(2)))
        assert evaluate(expr) == 8.0

    def test_division_by_zero_raises(self):
        with pytest.raises(ExecutionError):
            evaluate(BinaryOp("/", Literal(1), Literal(0)))

    def test_unary_minus(self):
        assert evaluate(UnaryOp("-", ColumnRef("a"))) == -3

    def test_comparisons(self):
        assert evaluate(BinaryOp(">", ColumnRef("a"), Literal(2))) is True
        assert evaluate(BinaryOp("<=", ColumnRef("b"), Literal(2))) is False
        assert evaluate(BinaryOp("=", ColumnRef("name"), Literal("hello"))) is True
        assert evaluate(BinaryOp("<>", ColumnRef("name"), Literal("hello"))) is False

    def test_null_propagates_through_arithmetic_and_comparison(self):
        assert evaluate(BinaryOp("+", Literal(None), Literal(1))) is None
        assert evaluate(BinaryOp(">", Literal(None), Literal(1))) is None

    def test_and_or_three_valued_logic(self):
        true = Literal(True)
        false = Literal(False)
        null = Literal(None)
        assert evaluate(BinaryOp("AND", true, null)) is None
        assert evaluate(BinaryOp("AND", false, null)) is False
        assert evaluate(BinaryOp("OR", true, null)) is True
        assert evaluate(BinaryOp("OR", false, null)) is None

    def test_not(self):
        assert evaluate(UnaryOp("NOT", Literal(True))) is False
        assert evaluate(UnaryOp("NOT", Literal(None))) is None

    def test_scalar_function(self):
        assert evaluate(FuncCall("abs", (UnaryOp("-", ColumnRef("a")),))) == 3
        assert evaluate(FuncCall("round", (Literal(3.14159), Literal(2)))) == 3.14

    def test_unknown_scalar_function_raises(self):
        with pytest.raises(PlanningError):
            compile_expression(FuncCall("frobnicate", (Literal(1),)), SCHEMA)

    def test_aggregate_in_scalar_context_raises(self):
        with pytest.raises(PlanningError):
            compile_expression(FuncCall("sum", (ColumnRef("a"),)), SCHEMA)

    def test_star_alone_cannot_compile(self):
        with pytest.raises(PlanningError):
            compile_expression(Star(), SCHEMA)


class TestPredicates:
    def test_in_list(self):
        expr = InList(ColumnRef("a"), (Literal(1), Literal(3)))
        assert evaluate(expr) is True
        assert evaluate(InList(ColumnRef("a"), (Literal(1),), negated=True)) is True

    def test_in_set(self):
        expr = InSet(ColumnRef("a"), frozenset({1, 2, 3}))
        assert evaluate(expr) is True
        assert evaluate(InSet(ColumnRef("a"), frozenset({5}), negated=True)) is True

    def test_between(self):
        assert evaluate(Between(ColumnRef("b"), Literal(2), Literal(3))) is True
        assert evaluate(Between(ColumnRef("b"), Literal(3), Literal(4))) is False
        assert evaluate(Between(ColumnRef("b"), Literal(3), Literal(4), negated=True)) is True

    def test_is_null(self):
        assert evaluate(IsNull(Literal(None))) is True
        assert evaluate(IsNull(ColumnRef("a"))) is False
        assert evaluate(IsNull(ColumnRef("a"), negated=True)) is True


class TestDateArithmetic:
    def test_date_minus_date_gives_days(self):
        expr = BinaryOp("-", ColumnRef("d"), Literal(dt.date(1995, 6, 1)))
        assert evaluate(expr) == 14

    def test_date_plus_days(self):
        expr = BinaryOp("+", ColumnRef("d"), Literal(10))
        assert evaluate(expr) == dt.date(1995, 6, 25)

    def test_date_plus_month_interval(self):
        expr = BinaryOp("+", ColumnRef("d"), IntervalLiteral(10, "month"))
        assert evaluate(expr) == dt.date(1996, 4, 15)

    def test_date_minus_month_interval(self):
        expr = BinaryOp("-", ColumnRef("d"), IntervalLiteral(6, "month"))
        assert evaluate(expr) == dt.date(1994, 12, 15)

    def test_date_plus_year_interval_handles_leap_days(self):
        schema = Schema.from_pairs([("d", "DATE")])
        expr = BinaryOp("+", ColumnRef("d"), IntervalLiteral(1, "year"))
        result = compile_expression(expr, schema)((dt.date(2020, 2, 29),))
        assert result == dt.date(2021, 2, 28)

    def test_date_plus_day_interval(self):
        expr = BinaryOp("+", ColumnRef("d"), IntervalLiteral(7, "day"))
        assert evaluate(expr) == dt.date(1995, 6, 22)

    def test_date_comparison(self):
        expr = BinaryOp(">", ColumnRef("d"), Literal(dt.date(1995, 1, 1)))
        assert evaluate(expr) is True


class TestTreeUtilities:
    def test_contains_aggregate(self):
        assert contains_aggregate(FuncCall("sum", (ColumnRef("a"),)))
        assert contains_aggregate(
            BinaryOp("+", Literal(1), FuncCall("count", (), star=True))
        )
        assert not contains_aggregate(BinaryOp("+", ColumnRef("a"), Literal(1)))

    def test_extract_aggregates_deduplicates(self):
        call = FuncCall("sum", (ColumnRef("a"),))
        expr = BinaryOp("+", call, call)
        assert extract_aggregates(expr) == [call]

    def test_extract_aggregates_ignores_scalar_functions(self):
        expr = FuncCall("abs", (FuncCall("sum", (ColumnRef("a"),)),))
        found = extract_aggregates(expr)
        assert len(found) == 1
        assert found[0].name == "sum"

    def test_expression_name(self):
        assert expression_name(ColumnRef("foo")) == "foo"
        assert expression_name(FuncCall("SUM", (ColumnRef("a"),))) == "sum"
        assert expression_name(Literal(3)) == "literal"
        assert expression_name(BinaryOp("+", Literal(1), Literal(2))) == "expr"
