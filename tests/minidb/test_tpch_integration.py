"""Integration tests: the paper's evaluation queries over synthetic TPC-H data."""

import pytest

from repro.bench.queries import (
    GB1,
    GB2,
    GB3,
    sgb1,
    sgb2,
    sgb3,
    sgb4,
    sgb5,
    sgb6,
    sgb_queries,
    standard_queries,
)


class TestStandardQueries:
    def test_gb1_runs_and_groups_customers(self, tpch_db):
        result = tpch_db.execute(GB1)
        assert len(result.rows) > 0
        # One row per customer key.
        keys = [row[0] for row in result.rows]
        assert len(keys) == len(set(keys))

    def test_gb2_runs_and_groups_parts(self, tpch_db):
        result = tpch_db.execute(GB2)
        assert len(result.rows) > 0
        assert all(row[0] >= 1 for row in result.rows)  # count(*) per part

    def test_gb3_runs_and_groups_suppliers(self, tpch_db):
        result = tpch_db.execute(GB3)
        assert 0 < len(result.rows) <= len(tpch_db.table("supplier"))

    def test_query_registry_contains_three_baselines(self):
        assert set(standard_queries()) == {"GB1", "GB2", "GB3"}


class TestSGBQueries:
    @pytest.mark.parametrize("overlap", ["JOIN-ANY", "ELIMINATE", "FORM-NEW-GROUP"])
    def test_sgb1_all_overlap_variants_run(self, tpch_db, overlap):
        result = tpch_db.execute(sgb1(eps=500.0, overlap=overlap))
        assert result.columns[-1] == "array_agg"
        assert len(result.rows) >= 1

    def test_sgb2_any_groups_at_most_sgb1_groups(self, tpch_db):
        all_groups = tpch_db.execute(sgb1(eps=500.0))
        any_groups = tpch_db.execute(sgb2(eps=500.0))
        assert len(any_groups.rows) <= len(all_groups.rows)

    def test_sgb3_and_sgb4_run(self, tpch_db):
        r3 = tpch_db.execute(sgb3(eps=5000.0))
        r4 = tpch_db.execute(sgb4(eps=5000.0))
        assert len(r3.rows) >= len(r4.rows) > 0

    def test_sgb5_and_sgb6_run(self, tpch_db):
        r5 = tpch_db.execute(sgb5(eps=5000.0))
        r6 = tpch_db.execute(sgb6(eps=5000.0))
        assert len(r5.rows) > 0 and len(r6.rows) > 0

    def test_larger_eps_gives_fewer_or_equal_any_groups(self, tpch_db):
        small = tpch_db.execute(sgb4(eps=1000.0))
        large = tpch_db.execute(sgb4(eps=100000.0))
        assert len(large.rows) <= len(small.rows)

    def test_strategies_agree_on_eliminate_grouping(self, tpch_db):
        counts = []
        for strategy in ("all-pairs", "bounds-checking", "index"):
            result = tpch_db.execute(
                sgb3(eps=5000.0, overlap="ELIMINATE"), sgb_strategy=strategy
            )
            counts.append(sorted(row[0] for row in result.rows))
        assert counts[0] == counts[1] == counts[2]

    def test_sgb_group_counts_bounded_by_input_rows(self, tpch_db):
        baseline = tpch_db.execute(GB2)
        sgb = tpch_db.execute(sgb3(eps=5000.0))
        assert len(sgb.rows) <= len(baseline.rows)

    def test_query_registry_contains_six_sgb_queries(self):
        assert set(sgb_queries()) == {"SGB1", "SGB2", "SGB3", "SGB4", "SGB5", "SGB6"}

    def test_linf_metric_variant_runs(self, tpch_db):
        result = tpch_db.execute(sgb4(eps=5000.0, metric="linf"))
        assert len(result.rows) > 0
