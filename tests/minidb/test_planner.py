"""Tests for the planner and its optimisation helpers."""

import pytest

from repro.exceptions import PlanningError
from repro.minidb import Database
from repro.minidb.expressions import BinaryOp, ColumnRef, Literal
from repro.minidb.plan.optimizer import (
    collect_column_refs,
    conjoin,
    expression_sources,
    extract_equi_join,
    rewrite_expression,
    split_conjuncts,
)
from repro.minidb.schema import Schema


class TestConjunctHelpers:
    def test_split_conjuncts_flattens_ands(self):
        expr = BinaryOp(
            "AND",
            BinaryOp("AND", ColumnRef("a"), ColumnRef("b")),
            ColumnRef("c"),
        )
        assert split_conjuncts(expr) == [ColumnRef("a"), ColumnRef("b"), ColumnRef("c")]

    def test_split_conjuncts_none(self):
        assert split_conjuncts(None) == []

    def test_split_does_not_flatten_or(self):
        expr = BinaryOp("OR", ColumnRef("a"), ColumnRef("b"))
        assert split_conjuncts(expr) == [expr]

    def test_conjoin_roundtrip(self):
        conjuncts = [ColumnRef("a"), ColumnRef("b")]
        combined = conjoin(conjuncts)
        assert split_conjuncts(combined) == conjuncts
        assert conjoin([]) is None

    def test_collect_column_refs(self):
        expr = BinaryOp("+", ColumnRef("a"), BinaryOp("*", ColumnRef("b", "t"), Literal(2)))
        refs = collect_column_refs(expr)
        assert ColumnRef("a") in refs and ColumnRef("b", "t") in refs


class TestSourceAttribution:
    @pytest.fixture
    def schemas(self):
        return [
            Schema.from_pairs([("id", "INT"), ("x", "FLOAT")], qualifier="p"),
            Schema.from_pairs([("pid", "INT"), ("w", "FLOAT")], qualifier="t"),
        ]

    def test_single_source_expression(self, schemas):
        expr = BinaryOp(">", ColumnRef("x"), Literal(1))
        assert expression_sources(expr, schemas) == {0}

    def test_two_source_expression(self, schemas):
        expr = BinaryOp("=", ColumnRef("id", "p"), ColumnRef("pid", "t"))
        assert expression_sources(expr, schemas) == {0, 1}

    def test_unknown_column_raises(self, schemas):
        with pytest.raises(PlanningError):
            expression_sources(ColumnRef("nope"), schemas)

    def test_extract_equi_join(self, schemas):
        conjunct = BinaryOp("=", ColumnRef("id", "p"), ColumnRef("pid", "t"))
        extracted = extract_equi_join(conjunct, schemas)
        assert extracted == (0, ColumnRef("id", "p"), 1, ColumnRef("pid", "t"))

    def test_extract_equi_join_rejects_single_source_equality(self, schemas):
        conjunct = BinaryOp("=", ColumnRef("id", "p"), ColumnRef("x", "p"))
        assert extract_equi_join(conjunct, schemas) is None

    def test_extract_equi_join_rejects_inequality(self, schemas):
        conjunct = BinaryOp(">", ColumnRef("id", "p"), ColumnRef("pid", "t"))
        assert extract_equi_join(conjunct, schemas) is None

    def test_rewrite_expression_substitutes_nodes(self):
        expr = BinaryOp("+", ColumnRef("a"), ColumnRef("b"))
        rewritten = rewrite_expression(expr, {ColumnRef("a"): Literal(1)})
        assert rewritten == BinaryOp("+", Literal(1), ColumnRef("b"))


class TestPlanShapes:
    def test_filter_pushdown_below_join(self, simple_db):
        plan = simple_db.explain(
            "SELECT p.id FROM points p, tags t WHERE p.id = t.pid AND p.x > 1"
        )
        # The single-table predicate must appear below the join in the tree.
        join_pos = plan.index("HashJoin")
        filter_pos = plan.index("Filter")
        assert filter_pos > join_pos  # child lines are printed after the parent

    def test_equi_join_prefers_hash_join(self, simple_db):
        plan = simple_db.explain("SELECT p.id FROM points p, tags t WHERE p.id = t.pid")
        assert "HashJoin" in plan and "NestedLoopJoin" not in plan

    def test_non_equi_join_uses_nested_loop(self, simple_db):
        plan = simple_db.explain("SELECT p.id FROM points p, tags t WHERE p.x > t.weight")
        assert "NestedLoopJoin" in plan

    def test_aggregate_plan_contains_hash_aggregate(self, simple_db):
        plan = simple_db.explain("SELECT label, count(*) FROM points GROUP BY label")
        assert "HashAggregate" in plan

    def test_sgb_plan_contains_sgb_aggregate(self, simple_db):
        plan = simple_db.explain(
            "SELECT count(*) FROM points GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1"
        )
        assert "SGBAggregate" in plan

    def test_order_limit_decorate_plan(self, simple_db):
        plan = simple_db.explain("SELECT id FROM points ORDER BY id LIMIT 2")
        assert "Sort" in plan and "Limit" in plan

    def test_select_without_from_rejected(self):
        with pytest.raises(PlanningError):
            Database().execute("SELECT 1")

    def test_in_subquery_must_be_single_column(self, simple_db):
        with pytest.raises(PlanningError):
            simple_db.execute(
                "SELECT id FROM points WHERE id IN (SELECT pid, tag FROM tags)"
            )

    def test_derived_table_alias_usable_in_outer_query(self, simple_db):
        result = simple_db.execute(
            "SELECT s.total FROM (SELECT sum(x) AS total FROM points) AS s"
        )
        assert len(result.rows) == 1

    def test_duplicate_output_names_deduplicated(self, simple_db):
        result = simple_db.execute("SELECT x, x FROM points LIMIT 1")
        assert len(set(result.columns)) == 2
