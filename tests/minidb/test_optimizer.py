"""The cost-driven rewrite layer: rule behaviour + randomized bit-identity.

The unit tests pin each rule's observable contract — where a conjunct lands,
what the trace says, when the escape hatches win.  The randomized suite is
the real safety net: for every query family the optimizer touches
(multi-join chains, filtered derived similarity joins, SGB subqueries) the
optimized plan must return *bit-identical* rows to ``optimizer=False`` on
both PointSet backends and at 1 and 2 workers.
"""

from __future__ import annotations

import random

import pytest

import repro.core.pointset as pointset
from repro.core.pointset import HAVE_NUMPY
from repro.minidb.database import Database
from repro.minidb.plan.rewrite import ENV_OPTIMIZER, optimize_plan, optimizer_enabled

BACKENDS = ["python"] + (["numpy"] if HAVE_NUMPY else [])


def _point_tables(db: Database, n: int = 120, seed: int = 5) -> None:
    rng = random.Random(seed)
    db.execute("CREATE TABLE pa (x FLOAT, y FLOAT)")
    db.execute("CREATE TABLE pb (x FLOAT, y FLOAT)")
    for name in ("pa", "pb"):
        db.insert_rows(
            name,
            [(rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)) for _ in range(n)],
        )


def _chain_tables(db: Database, n: int = 200, seed: int = 7) -> None:
    rng = random.Random(seed)
    db.execute("CREATE TABLE t1 (k INT, v FLOAT)")
    db.execute("CREATE TABLE t2 (k INT, j INT)")
    db.execute("CREATE TABLE t3 (j INT, w FLOAT)")
    db.insert_rows("t1", [(rng.randrange(8), float(i)) for i in range(n)])
    db.insert_rows("t2", [(rng.randrange(8), rng.randrange(n)) for i in range(n)])
    db.insert_rows("t3", [(j, float(j) * 0.5) for j in range(12)])


FILTERED_SIM = (
    "SELECT d.ax, d.bx FROM "
    "(SELECT a.x AS ax, a.y AS ay, b.x AS bx FROM pa AS a "
    "SIMILARITY JOIN pb AS b ON DISTANCE(a.x, a.y, b.x, b.y) WITHIN 0.5) AS d "
    "WHERE d.ax < 1.0"
)

CHAIN = "SELECT t1.v, t3.w FROM t1, t2, t3 WHERE t1.k = t2.k AND t2.j = t3.j"


# ---------------------------------------------------------------------------
# escape hatches
# ---------------------------------------------------------------------------


class TestEscapeHatches:
    def test_env_off_values(self, monkeypatch):
        for value in ("off", "0", "false", "no"):
            monkeypatch.setenv(ENV_OPTIMIZER, value)
            assert not optimizer_enabled(True)
        monkeypatch.setenv(ENV_OPTIMIZER, "on")
        assert optimizer_enabled(True)
        monkeypatch.delenv(ENV_OPTIMIZER)
        assert optimizer_enabled(True)
        assert not optimizer_enabled(False)

    def test_env_off_disables_rewrites(self, monkeypatch):
        db = Database()
        _chain_tables(db)
        monkeypatch.setenv(ENV_OPTIMIZER, "off")
        result = db.execute(CHAIN)
        assert result.rewrites == []
        monkeypatch.delenv(ENV_OPTIMIZER)
        assert db.execute(CHAIN).rewrites

    def test_constructor_off_disables_rewrites(self):
        db = Database(optimizer=False)
        _chain_tables(db)
        assert db.execute(CHAIN).rewrites == []

    def test_env_off_wins_over_constructor_on(self, monkeypatch):
        db = Database(optimizer=True)
        _chain_tables(db)
        monkeypatch.setenv(ENV_OPTIMIZER, "off")
        assert db.execute(CHAIN).rewrites == []


# ---------------------------------------------------------------------------
# filter placement
# ---------------------------------------------------------------------------


class TestFilterPlacement:
    def test_selective_predicate_sinks_into_eps_join_input(self):
        db = Database()
        _point_tables(db)
        result = db.execute(FILTERED_SIM)
        assert any(
            entry.startswith("filter-pushdown:") and "eps-join" in entry
            for entry in result.rewrites
        )

    def test_pushdown_is_bit_identical(self):
        on, off = Database(optimizer=True), Database(optimizer=False)
        for db in (on, off):
            _point_tables(db)
        a, b = on.execute(FILTERED_SIM), off.execute(FILTERED_SIM)
        assert a.rows == b.rows and a.columns == b.columns

    def test_non_selective_predicate_is_deferred(self):
        db = Database()
        _point_tables(db)
        sql = FILTERED_SIM.replace("d.ax < 1.0", "d.ax < 1000.0")
        result = db.execute(sql)
        assert any(entry.startswith("filter-deferral:") for entry in result.rewrites)
        reference = Database(optimizer=False)
        _point_tables(reference)
        assert result.rows == reference.execute(sql).rows

    def test_knn_right_side_predicate_stays_put(self):
        """A predicate on the kNN join's right side would change neighbour
        sets if pushed below the join — it must never sink."""
        db = Database()
        _point_tables(db)
        sql = (
            "SELECT d.ax, d.bx FROM "
            "(SELECT a.x AS ax, b.x AS bx FROM pa AS a "
            "SIMILARITY JOIN pb AS b ON DISTANCE(a.x, a.y, b.x, b.y) KNN 3) AS d "
            "WHERE d.bx < 5.0"
        )
        result = db.execute(sql)
        assert not any("into" in e and "kNN" in e for e in result.rewrites)
        reference = Database(optimizer=False)
        _point_tables(reference)
        assert result.rows == reference.execute(sql).rows

    def test_knn_left_side_predicate_sinks(self):
        db = Database()
        _point_tables(db)
        sql = (
            "SELECT d.ax, d.bx FROM "
            "(SELECT a.x AS ax, b.x AS bx FROM pa AS a "
            "SIMILARITY JOIN pb AS b ON DISTANCE(a.x, a.y, b.x, b.y) KNN 3) AS d "
            "WHERE d.ax < 5.0"
        )
        result = db.execute(sql)
        assert any("left input of kNN join" in e for e in result.rewrites)
        reference = Database(optimizer=False)
        _point_tables(reference)
        assert result.rows == reference.execute(sql).rows

    def test_sgb_subquery_filter_stays_above_aggregate(self):
        """Every SGB output column is a centroid key or aggregate, so no
        predicate can soundly sink below the aggregate."""
        db = Database()
        _point_tables(db, n=60)
        sql = (
            "SELECT g.cnt FROM "
            "(SELECT count(*) AS cnt FROM pa "
            "GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1) AS g "
            "WHERE g.cnt > 2"
        )
        result = db.execute(sql)
        explain = db.explain(sql)
        # the conjunct may sink through the derived-table wrappers but the
        # SGBAggregate must stay below it in the plan tree
        filter_line = next(
            i for i, line in enumerate(explain.splitlines()) if "Filter" in line
        )
        sgb_line = next(
            i for i, line in enumerate(explain.splitlines()) if "SGBAggregate" in line
        )
        assert filter_line < sgb_line
        reference = Database(optimizer=False)
        _point_tables(reference, n=60)
        assert result.rows == reference.execute(sql).rows


# ---------------------------------------------------------------------------
# join reordering
# ---------------------------------------------------------------------------


class TestJoinReorder:
    def test_chain_is_reordered_with_trace(self):
        db = Database()
        _chain_tables(db)
        result = db.execute(CHAIN)
        assert any(entry.startswith("join-reorder:") for entry in result.rewrites)

    def test_reorder_is_bit_identical(self):
        on, off = Database(optimizer=True), Database(optimizer=False)
        for db in (on, off):
            _chain_tables(db)
        a, b = on.execute(CHAIN), off.execute(CHAIN)
        assert a.rows == b.rows and a.columns == b.columns

    def test_explain_shows_rewrites_and_order(self):
        db = Database()
        _chain_tables(db)
        explain = db.explain(CHAIN)
        trace_lines = [l for l in explain.splitlines() if l.startswith("rewrite: ")]
        assert any("join-reorder:" in l and "->" in l for l in trace_lines)
        # the chosen order names the leaves
        reorder = next(l for l in trace_lines if "join-reorder:" in l)
        for name in ("t1", "t2", "t3"):
            assert name in reorder

    def test_two_way_join_left_alone(self):
        db = Database()
        _chain_tables(db)
        sql = "SELECT t1.v FROM t1, t2 WHERE t1.k = t2.k"
        result = db.execute(sql)
        assert not any(e.startswith("join-reorder:") for e in result.rewrites)


# ---------------------------------------------------------------------------
# propagated statistics
# ---------------------------------------------------------------------------


class TestPropagatedStats:
    def test_filter_estimate_reflects_range_selectivity(self):
        db = Database()
        _point_tables(db, n=500)
        explain = db.explain("SELECT x FROM pa WHERE x < 2.0")
        filter_line = next(l for l in explain.splitlines() if "Filter" in l)
        assert "est_rows=" in filter_line
        est = int(filter_line.split("est_rows=")[1].split(")")[0])
        # uniform on [0, 10): x < 2 keeps about a fifth, not a synthetic 25%
        assert 50 <= est <= 160

    def test_derived_relation_reports_propagated_stats(self):
        """A filter above a derived projection estimates from the base
        table's histogram, not the synthetic fallback."""
        db = Database()
        _point_tables(db, n=500)
        explain = db.explain(
            "SELECT d.ax FROM (SELECT x AS ax FROM pa) AS d WHERE d.ax < 2.0"
        )
        filter_lines = [l for l in explain.splitlines() if "Filter" in l]
        assert filter_lines, explain
        est = int(filter_lines[0].split("est_rows=")[1].split(")")[0])
        assert 50 <= est <= 160


# ---------------------------------------------------------------------------
# randomized bit-identity: optimized vs reference plans
# ---------------------------------------------------------------------------


def _random_chain_query(rng: random.Random) -> str:
    cols = rng.sample(["t1.v", "t2.j", "t3.w", "t1.k"], k=rng.randrange(2, 4))
    sql = (
        f"SELECT {', '.join(cols)} FROM t1, t2, t3 "
        "WHERE t1.k = t2.k AND t2.j = t3.j"
    )
    if rng.random() < 0.5:
        sql += f" AND t1.v < {rng.uniform(20.0, 180.0):.1f}"
    return sql


def _random_sim_query(rng: random.Random) -> str:
    eps = round(rng.uniform(0.2, 0.8), 2)
    bound = round(rng.uniform(0.5, 12.0), 1)
    return (
        "SELECT d.ax, d.bx FROM "
        "(SELECT a.x AS ax, a.y AS ay, b.x AS bx FROM pa AS a "
        f"SIMILARITY JOIN pb AS b ON DISTANCE(a.x, a.y, b.x, b.y) WITHIN {eps}) AS d "
        f"WHERE d.ax < {bound}"
    )


def _random_sgb_query(rng: random.Random) -> str:
    eps = round(rng.uniform(0.5, 1.5), 2)
    cutoff = rng.randrange(1, 4)
    return (
        "SELECT g.cnt FROM "
        "(SELECT count(*) AS cnt FROM pa "
        f"GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN {eps}) AS g "
        f"WHERE g.cnt > {cutoff}"
    )


FAMILIES = {
    "chain": _random_chain_query,
    "sim": _random_sim_query,
    "sgb": _random_sgb_query,
}


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("workers", [1, 2])
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_randomized_bit_identity(monkeypatch, backend, workers, family):
    if backend == "python":
        monkeypatch.setattr(pointset, "HAVE_NUMPY", False)
    rng = random.Random(hash((backend, workers, family)) & 0xFFFF)
    optimized = Database(optimizer=True, sgb_workers=workers)
    reference = Database(optimizer=False, sgb_workers=workers)
    for db in (optimized, reference):
        _point_tables(db, n=90, seed=13)
        _chain_tables(db, n=120, seed=17)
    for trial in range(4):
        sql = FAMILIES[family](rng)
        a = optimized.execute(sql)
        b = reference.execute(sql)
        assert a.columns == b.columns, f"{family} trial {trial}: {sql}"
        assert a.rows == b.rows, f"{family} trial {trial} diverged: {sql}"
        assert b.rewrites == []
