"""SIMILARITY JOIN through every SQL layer: lexer, parser, planner, executor."""

from __future__ import annotations

import pytest

from repro.exceptions import PlanningError, SqlSyntaxError
from repro.join import eps_join, knn_join
from repro.minidb import Database
from repro.minidb.expressions import ColumnRef, Literal
from repro.minidb.sql.ast import SelectStatement, SimilarityJoinClause
from repro.minidb.sql.lexer import TokenType, tokenize
from repro.minidb.sql.parser import parse_sql

EPS_SQL = (
    "SELECT c.cid, p.pid FROM checkins c SIMILARITY JOIN pois p "
    "ON DISTANCE(c.x, c.y, p.x, p.y) WITHIN 1.5"
)


# ---------------------------------------------------------------------------
# lexer
# ---------------------------------------------------------------------------


class TestLexer:
    def test_similarity_and_knn_are_keywords(self):
        tokens = tokenize("SIMILARITY JOIN t ON DISTANCE(x) KNN 3")
        keywords = [t.value for t in tokens if t.type is TokenType.KEYWORD]
        assert "SIMILARITY" in keywords
        assert "KNN" in keywords

    def test_distance_stays_an_identifier(self):
        tokens = tokenize("DISTANCE(a, b)")
        assert tokens[0].type is TokenType.IDENTIFIER
        assert tokens[0].value == "DISTANCE"

    def test_keywords_are_case_insensitive(self):
        tokens = tokenize("similarity join knn")
        assert [t.value for t in tokens[:-1]] == ["SIMILARITY", "JOIN", "KNN"]


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------


class TestParser:
    def test_eps_join_clause(self):
        stmt = parse_sql(EPS_SQL)
        assert isinstance(stmt, SelectStatement)
        assert len(stmt.similarity_joins) == 1
        index, clause = stmt.similarity_joins[0]
        assert index == 1  # the second FROM source
        assert isinstance(clause, SimilarityJoinClause)
        assert clause.left_exprs == (ColumnRef("x", "c"), ColumnRef("y", "c"))
        assert clause.right_exprs == (ColumnRef("x", "p"), ColumnRef("y", "p"))
        assert clause.metric == "L2"
        assert clause.eps == Literal(1.5)
        assert clause.k is None
        assert stmt.join_conditions == ()

    def test_knn_join_clause(self):
        stmt = parse_sql(
            "SELECT * FROM a SIMILARITY JOIN b ON DISTANCE(a.x, b.x) KNN 3"
        )
        _, clause = stmt.similarity_joins[0]
        assert clause.k == Literal(3)
        assert clause.eps is None
        assert clause.left_exprs == (ColumnRef("x", "a"),)

    def test_metric_before_within(self):
        stmt = parse_sql(
            "SELECT * FROM a SIMILARITY JOIN b ON DISTANCE(a.x, b.x) LINF WITHIN 2"
        )
        assert stmt.similarity_joins[0][1].metric == "LINF"

    def test_metric_via_using(self):
        stmt = parse_sql(
            "SELECT * FROM a SIMILARITY JOIN b "
            "ON DISTANCE(a.x, b.x) KNN 2 USING L1"
        )
        assert stmt.similarity_joins[0][1].metric == "L1"

    def test_workers_option(self):
        stmt = parse_sql(
            "SELECT * FROM a SIMILARITY JOIN b "
            "ON DISTANCE(a.x, b.x) WITHIN 1 WORKERS 4"
        )
        assert stmt.similarity_joins[0][1].workers == Literal(4)

    def test_mixes_with_ordinary_joins(self):
        stmt = parse_sql(
            "SELECT * FROM a JOIN b ON a.id = b.id "
            "SIMILARITY JOIN c ON DISTANCE(a.x, a.y, c.x, c.y) WITHIN 1"
        )
        assert len(stmt.from_items) == 3
        assert len(stmt.join_conditions) == 1
        assert stmt.similarity_joins[0][0] == 2

    def test_distance_arguments_may_be_expressions(self):
        stmt = parse_sql(
            "SELECT * FROM a SIMILARITY JOIN b "
            "ON DISTANCE(a.x * 2, b.x + 1) WITHIN 1"
        )
        _, clause = stmt.similarity_joins[0]
        assert len(clause.left_exprs) == 1 and len(clause.right_exprs) == 1

    @pytest.mark.parametrize(
        "sql",
        [
            # not a DISTANCE(...) condition
            "SELECT * FROM a SIMILARITY JOIN b ON a.x = b.x",
            # odd coordinate count
            "SELECT * FROM a SIMILARITY JOIN b ON DISTANCE(a.x, a.y, b.x) WITHIN 1",
            # zero coordinates
            "SELECT * FROM a SIMILARITY JOIN b ON DISTANCE() WITHIN 1",
            # missing WITHIN / KNN
            "SELECT * FROM a SIMILARITY JOIN b ON DISTANCE(a.x, b.x)",
            # missing ON
            "SELECT * FROM a SIMILARITY JOIN b WITHIN 1",
            # SIMILARITY without JOIN
            "SELECT * FROM a SIMILARITY b ON DISTANCE(a.x, b.x) WITHIN 1",
        ],
    )
    def test_syntax_errors(self, sql):
        with pytest.raises(SqlSyntaxError):
            parse_sql(sql)


# ---------------------------------------------------------------------------
# planner + executor (end to end through Database)
# ---------------------------------------------------------------------------


@pytest.fixture()
def db():
    database = Database()
    database.execute("CREATE TABLE checkins (cid INT, x FLOAT, y FLOAT)")
    database.execute("CREATE TABLE pois (pid INT, x FLOAT, y FLOAT)")
    database.insert_rows(
        "checkins",
        [(1, 0.0, 0.0), (2, 1.0, 0.0), (3, 5.0, 5.0), (4, 9.0, 9.0)],
    )
    database.insert_rows(
        "pois", [(10, 0.5, 0.0), (20, 5.2, 5.1), (30, 8.0, 8.0)]
    )
    return database


class TestPlanner:
    def test_explain_shows_the_join_operator(self, db):
        plan = db.explain(EPS_SQL)
        assert "SimilarityJoin" in plan
        assert "WITHIN 1.5" in plan

    @pytest.mark.parametrize(
        "sql",
        [
            # non-positive eps
            EPS_SQL.replace("WITHIN 1.5", "WITHIN 0"),
            EPS_SQL.replace("WITHIN 1.5", "WITHIN -2"),
            # non-constant eps
            EPS_SQL.replace("WITHIN 1.5", "WITHIN c.x"),
            # non-positive / non-integer k
            EPS_SQL.replace("WITHIN 1.5", "KNN 0"),
            EPS_SQL.replace("WITHIN 1.5", "KNN 1.5"),
            # sides swapped: coordinates don't resolve against their half
            "SELECT * FROM checkins c SIMILARITY JOIN pois p "
            "ON DISTANCE(p.x, p.y, c.x, c.y) WITHIN 1",
            # unknown column
            "SELECT * FROM checkins c SIMILARITY JOIN pois p "
            "ON DISTANCE(c.x, c.nope, p.x, p.y) WITHIN 1",
            # negative workers
            EPS_SQL + " WORKERS -1",
        ],
    )
    def test_planning_errors(self, db, sql):
        with pytest.raises(PlanningError):
            db.execute(sql)


class TestExecutor:
    def _points(self, db, table):
        rows = db.table(table).rows
        return [(r[1], r[2]) for r in rows]

    def test_eps_join_rows_match_the_core_join(self, db):
        result = db.execute(EPS_SQL)
        checkins = db.table("checkins").rows
        pois = db.table("pois").rows
        expected = [
            (checkins[i][0], pois[j][0])
            for i, j in eps_join(
                self._points(db, "checkins"), self._points(db, "pois"), 1.5, workers=1
            )
        ]
        assert result.rows == expected
        assert result.columns == ["cid", "pid"]

    def test_knn_join_rows_match_the_core_join(self, db):
        result = db.execute(EPS_SQL.replace("WITHIN 1.5", "KNN 2"))
        checkins = db.table("checkins").rows
        pois = db.table("pois").rows
        expected = [
            (checkins[i][0], pois[j][0])
            for i, j in knn_join(
                self._points(db, "checkins"), self._points(db, "pois"), 2
            )
        ]
        assert result.rows == expected

    def test_star_output_concatenates_both_rows(self, db):
        rows = db.execute(
            "SELECT * FROM checkins c SIMILARITY JOIN pois p "
            "ON DISTANCE(c.x, c.y, p.x, p.y) KNN 1 WHERE c.cid = 1"
        ).rows
        assert rows == [(1, 0.0, 0.0, 10, 0.5, 0.0)]

    def test_where_filters_apply(self, db):
        count = db.execute(
            EPS_SQL.replace("SELECT c.cid, p.pid", "SELECT count(*)")
            + " WHERE c.cid > 2"
        ).scalar()
        assert count == 2  # (3, 20) and (4, 30) survive the filter

    def test_workers_clause_is_bit_identical(self, db):
        serial = db.execute(EPS_SQL).rows
        assert db.execute(EPS_SQL + " WORKERS 2").rows == serial

    def test_session_default_workers_apply(self):
        parallel_db = Database(sgb_workers=2)
        parallel_db.execute("CREATE TABLE a (x FLOAT, y FLOAT)")
        parallel_db.execute("CREATE TABLE b (x FLOAT, y FLOAT)")
        parallel_db.insert_rows("a", [(float(i), 0.0) for i in range(30)])
        parallel_db.insert_rows("b", [(float(i) + 0.4, 0.0) for i in range(30)])
        sql = (
            "SELECT count(*) FROM a SIMILARITY JOIN b "
            "ON DISTANCE(a.x, a.y, b.x, b.y) WITHIN 0.5"
        )
        assert parallel_db.execute(sql).scalar() == 30

    def test_metric_changes_the_pair_set(self, db):
        l2 = db.execute(
            EPS_SQL.replace("SELECT c.cid, p.pid", "SELECT count(*)")
        ).scalar()
        linf = db.execute(
            EPS_SQL.replace("SELECT c.cid, p.pid", "SELECT count(*)").replace(
                "WITHIN 1.5", "LINF WITHIN 1.5"
            )
        ).scalar()
        assert linf >= l2  # the LINF ball contains the L2 ball

    def test_empty_side_yields_no_rows(self, db):
        db.execute("CREATE TABLE empty_pois (pid INT, x FLOAT, y FLOAT)")
        rows = db.execute(
            "SELECT c.cid FROM checkins c SIMILARITY JOIN empty_pois p "
            "ON DISTANCE(c.x, c.y, p.x, p.y) WITHIN 5.0"
        ).rows
        assert rows == []

    def test_join_feeds_similarity_group_by(self, db):
        # Join, then SGB the matched POI locations: the join streams into
        # the ordinary operator pipeline, so derived tables work unchanged.
        result = db.execute(
            "SELECT count(*) FROM (SELECT p.x AS px, p.y AS py FROM checkins c "
            "SIMILARITY JOIN pois p ON DISTANCE(c.x, c.y, p.x, p.y) WITHIN 1.5) m "
            "GROUP BY px, py DISTANCE-TO-ANY L2 WITHIN 2.0"
        )
        assert len(result.rows) >= 1

    def test_null_join_attribute_is_an_execution_error(self, db):
        from repro.exceptions import ExecutionError

        db.insert_rows("pois", [(99, None, 1.0)])
        with pytest.raises(ExecutionError):
            db.execute(EPS_SQL)
