"""Unit tests for the physical operators (executed directly, without SQL)."""

import pytest

from repro.exceptions import ExecutionError
from repro.minidb.exec.aggregate import AggregateSpec, HashAggregate
from repro.minidb.exec.operators import (
    Distinct,
    Filter,
    HashJoin,
    Limit,
    NestedLoopJoin,
    Project,
    Rename,
    SeqScan,
    Sort,
    ValuesScan,
)
from repro.minidb.expressions import BinaryOp, ColumnRef, FuncCall, Literal
from repro.minidb.schema import Schema
from repro.minidb.table import Table
from repro.minidb.types import DataType


@pytest.fixture
def people():
    table = Table("people", Schema.from_pairs(
        [("id", "INT"), ("age", "INT"), ("city", "TEXT")], qualifier="people"
    ))
    table.insert_many(
        [
            (1, 30, "ams"),
            (2, 25, "nyc"),
            (3, 35, "ams"),
            (4, 40, "sfo"),
        ]
    )
    return table


@pytest.fixture
def orders():
    table = Table("orders", Schema.from_pairs(
        [("person_id", "INT"), ("amount", "FLOAT")], qualifier="orders"
    ))
    table.insert_many([(1, 10.0), (1, 20.0), (2, 5.0), (9, 99.0)])
    return table


class TestScanFilterProject:
    def test_seqscan_yields_all_rows(self, people):
        scan = SeqScan(people)
        assert len(list(scan.rows())) == 4

    def test_seqscan_alias_requalifies_schema(self, people):
        scan = SeqScan(people, alias="p")
        assert scan.schema.has_column("id", "p")
        assert not scan.schema.has_column("id", "people")

    def test_filter(self, people):
        op = Filter(SeqScan(people), BinaryOp(">", ColumnRef("age"), Literal(28)))
        assert [row[0] for row in op.rows()] == [1, 3, 4]

    def test_filter_drops_null_comparisons(self, people):
        people.insert((5, None, "ber"))
        op = Filter(SeqScan(people), BinaryOp(">", ColumnRef("age"), Literal(28)))
        assert 5 not in [row[0] for row in op.rows()]

    def test_project_computes_expressions(self, people):
        op = Project(
            SeqScan(people),
            [ColumnRef("id"), BinaryOp("*", ColumnRef("age"), Literal(2))],
            ["id", "double_age"],
            [DataType.INT, DataType.INT],
        )
        rows = list(op.rows())
        assert rows[0] == (1, 60)
        assert op.schema.names() == ["id", "double_age"]

    def test_project_name_mismatch_raises(self, people):
        with pytest.raises(ExecutionError):
            Project(SeqScan(people), [ColumnRef("id")], ["a", "b"])

    def test_values_scan(self):
        schema = Schema.from_pairs([("x", "INT")])
        op = ValuesScan([(1,), (2,)], schema)
        assert list(op.rows()) == [(1,), (2,)]

    def test_rename_requalifies(self, people):
        renamed = Rename(SeqScan(people), qualifier="r", names=["pid", "years", "town"])
        assert renamed.schema.has_column("pid", "r")
        assert list(renamed.rows())[0] == (1, 30, "ams")

    def test_explain_renders_tree(self, people):
        op = Filter(SeqScan(people), BinaryOp(">", ColumnRef("age"), Literal(28)))
        text = op.explain()
        assert "Filter" in text and "SeqScan(people)" in text


class TestJoins:
    def test_nested_loop_cross_join(self, people, orders):
        join = NestedLoopJoin(SeqScan(people), SeqScan(orders))
        assert len(list(join.rows())) == 16

    def test_nested_loop_with_condition(self, people, orders):
        condition = BinaryOp(
            "=", ColumnRef("id", "people"), ColumnRef("person_id", "orders")
        )
        join = NestedLoopJoin(SeqScan(people), SeqScan(orders), condition)
        rows = list(join.rows())
        assert len(rows) == 3
        assert all(row[0] == row[3] for row in rows)

    def test_hash_join_matches_nested_loop(self, people, orders):
        left_key = [ColumnRef("id", "people")]
        right_key = [ColumnRef("person_id", "orders")]
        hash_rows = set(
            HashJoin(SeqScan(people), SeqScan(orders), left_key, right_key).rows()
        )
        condition = BinaryOp("=", left_key[0], right_key[0])
        nl_rows = set(NestedLoopJoin(SeqScan(people), SeqScan(orders), condition).rows())
        assert hash_rows == nl_rows

    def test_hash_join_with_residual(self, people, orders):
        join = HashJoin(
            SeqScan(people),
            SeqScan(orders),
            [ColumnRef("id", "people")],
            [ColumnRef("person_id", "orders")],
            residual=BinaryOp(">", ColumnRef("amount"), Literal(8.0)),
        )
        rows = list(join.rows())
        assert {row[4] for row in rows} == {10.0, 20.0}

    def test_hash_join_requires_keys(self, people, orders):
        with pytest.raises(ExecutionError):
            HashJoin(SeqScan(people), SeqScan(orders), [], [])

    def test_hash_join_skips_null_keys(self, people, orders):
        orders.insert((None, 7.0))
        join = HashJoin(
            SeqScan(people),
            SeqScan(orders),
            [ColumnRef("id", "people")],
            [ColumnRef("person_id", "orders")],
        )
        assert all(row[3] is not None for row in join.rows())


class TestSortLimitDistinct:
    def test_sort_ascending_descending(self, people):
        ascending = Sort(SeqScan(people), [ColumnRef("age")], [True])
        assert [row[1] for row in ascending.rows()] == [25, 30, 35, 40]
        descending = Sort(SeqScan(people), [ColumnRef("age")], [False])
        assert [row[1] for row in descending.rows()] == [40, 35, 30, 25]

    def test_multi_key_sort(self, people):
        op = Sort(SeqScan(people), [ColumnRef("city"), ColumnRef("age")], [True, False])
        rows = list(op.rows())
        assert [(row[2], row[1]) for row in rows] == [
            ("ams", 35), ("ams", 30), ("nyc", 25), ("sfo", 40),
        ]

    def test_limit(self, people):
        op = Limit(SeqScan(people), 2)
        assert len(list(op.rows())) == 2
        assert len(list(Limit(SeqScan(people), 0).rows())) == 0

    def test_distinct(self):
        schema = Schema.from_pairs([("x", "INT")])
        op = Distinct(ValuesScan([(1,), (2,), (1,), (3,), (2,)], schema))
        assert sorted(list(op.rows())) == [(1,), (2,), (3,)]

    def test_distinct_handles_list_values(self):
        schema = Schema.from_pairs([("x", "TEXT")])
        op = Distinct(ValuesScan([([1, 2],), ([1, 2],)], schema))
        assert len(list(op.rows())) == 1


class TestHashAggregateOperator:
    def test_group_by_city(self, people):
        agg = HashAggregate(
            SeqScan(people),
            [ColumnRef("city")],
            ["city"],
            [
                AggregateSpec("count", (), True, "n"),
                AggregateSpec("avg", (ColumnRef("age"),), False, "avg_age"),
            ],
        )
        rows = {row[0]: (row[1], row[2]) for row in agg.rows()}
        assert rows["ams"] == (2, 32.5)
        assert rows["nyc"] == (1, 25.0)

    def test_global_aggregation_over_empty_input_yields_one_row(self):
        schema = Schema.from_pairs([("x", "INT")])
        agg = HashAggregate(
            ValuesScan([], schema),
            [],
            [],
            [AggregateSpec("count", (), True, "n"),
             AggregateSpec("sum", (ColumnRef("x"),), False, "total")],
        )
        rows = list(agg.rows())
        assert rows == [(0, None)]

    def test_grouped_aggregation_over_empty_input_yields_no_rows(self):
        schema = Schema.from_pairs([("x", "INT")])
        agg = HashAggregate(
            ValuesScan([], schema),
            [ColumnRef("x")],
            ["x"],
            [AggregateSpec("count", (), True, "n")],
        )
        assert list(agg.rows()) == []

    def test_aggregate_output_schema(self, people):
        agg = HashAggregate(
            SeqScan(people),
            [ColumnRef("city")],
            ["city"],
            [AggregateSpec("count", (), True, "n")],
        )
        assert agg.schema.names() == ["city", "n"]
