"""Tests for the SQL parser (statements, expressions, SGB clauses)."""

import datetime as dt

import pytest

from repro.exceptions import SqlSyntaxError
from repro.minidb.expressions import (
    Between,
    BinaryOp,
    ColumnRef,
    FuncCall,
    InList,
    InSubquery,
    IntervalLiteral,
    IsNull,
    Literal,
    UnaryOp,
)
from repro.minidb.sql.ast import (
    CreateTableStatement,
    DropTableStatement,
    InsertStatement,
    SelectStatement,
    SubquerySource,
    TableSource,
)
from repro.minidb.sql.parser import parse_sql


class TestDdlDml:
    def test_create_table(self):
        stmt = parse_sql("CREATE TABLE t (id INT, name VARCHAR(20), score FLOAT)")
        assert isinstance(stmt, CreateTableStatement)
        assert stmt.name == "t"
        assert stmt.columns == (("id", "INT"), ("name", "VARCHAR"), ("score", "FLOAT"))

    def test_drop_table(self):
        stmt = parse_sql("DROP TABLE old_data")
        assert isinstance(stmt, DropTableStatement)
        assert stmt.name == "old_data"

    def test_insert_values(self):
        stmt = parse_sql("INSERT INTO t VALUES (1, 'a', 2.5), (2, 'b', -1.0)")
        assert isinstance(stmt, InsertStatement)
        assert len(stmt.rows) == 2
        assert stmt.rows[0][0] == Literal(1)
        assert stmt.rows[1][2] == UnaryOp("-", Literal(1.0))

    def test_insert_with_column_list(self):
        stmt = parse_sql("INSERT INTO t (id, name) VALUES (1, 'x')")
        assert stmt.columns == ("id", "name")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT 1 FROM t extra tokens here ;;")

    def test_unsupported_statement_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("UPDATE t SET a = 1")


class TestSelectStructure:
    def test_simple_select(self):
        stmt = parse_sql("SELECT a, b AS bee FROM t WHERE a > 1")
        assert isinstance(stmt, SelectStatement)
        assert len(stmt.items) == 2
        assert stmt.items[1].alias == "bee"
        assert isinstance(stmt.from_items[0], TableSource)
        assert stmt.where == BinaryOp(">", ColumnRef("a"), Literal(1))

    def test_select_star(self):
        stmt = parse_sql("SELECT * FROM t")
        from repro.minidb.expressions import Star

        assert isinstance(stmt.items[0].expr, Star)

    def test_table_alias_with_and_without_as(self):
        stmt = parse_sql("SELECT x FROM customers AS c, orders o")
        assert stmt.from_items[0].alias == "c"
        assert stmt.from_items[1].alias == "o"

    def test_derived_table(self):
        stmt = parse_sql("SELECT x FROM (SELECT a AS x FROM t) AS sub")
        assert isinstance(stmt.from_items[0], SubquerySource)
        assert stmt.from_items[0].alias == "sub"

    def test_explicit_join_with_on(self):
        stmt = parse_sql("SELECT * FROM a JOIN b ON a.id = b.id")
        assert len(stmt.from_items) == 2
        assert len(stmt.join_conditions) == 1

    def test_order_by_and_limit(self):
        stmt = parse_sql("SELECT a FROM t ORDER BY a DESC, b LIMIT 7")
        assert stmt.limit == 7
        assert stmt.order_by[0].ascending is False
        assert stmt.order_by[1].ascending is True

    def test_group_by_having(self):
        stmt = parse_sql("SELECT a, count(*) FROM t GROUP BY a HAVING count(*) > 2")
        assert stmt.group_by is not None
        assert stmt.group_by.keys == (ColumnRef("a"),)
        assert stmt.group_by.sgb is None
        assert isinstance(stmt.having, BinaryOp)

    def test_distinct(self):
        assert parse_sql("SELECT DISTINCT a FROM t").distinct is True

    def test_count_star(self):
        stmt = parse_sql("SELECT count(*) FROM t")
        call = stmt.items[0].expr
        assert isinstance(call, FuncCall) and call.star


class TestExpressions:
    def _expr(self, text):
        return parse_sql(f"SELECT {text} FROM t").items[0].expr

    def test_arithmetic_precedence(self):
        expr = self._expr("1 + 2 * 3")
        assert expr == BinaryOp("+", Literal(1), BinaryOp("*", Literal(2), Literal(3)))

    def test_parentheses_override_precedence(self):
        expr = self._expr("(1 + 2) * 3")
        assert expr == BinaryOp("*", BinaryOp("+", Literal(1), Literal(2)), Literal(3))

    def test_qualified_column(self):
        assert self._expr("r1.c_custkey") == ColumnRef("c_custkey", "r1")

    def test_boolean_connectives(self):
        where = parse_sql("SELECT a FROM t WHERE a = 1 OR b = 2 AND NOT c = 3").where
        assert isinstance(where, BinaryOp) and where.op == "OR"

    def test_between(self):
        where = parse_sql("SELECT a FROM t WHERE a BETWEEN 1 AND 10").where
        assert where == Between(ColumnRef("a"), Literal(1), Literal(10), False)

    def test_not_between(self):
        where = parse_sql("SELECT a FROM t WHERE a NOT BETWEEN 1 AND 10").where
        assert isinstance(where, Between) and where.negated

    def test_in_list(self):
        where = parse_sql("SELECT a FROM t WHERE a IN (1, 2, 3)").where
        assert isinstance(where, InList)
        assert len(where.values) == 3

    def test_in_subquery(self):
        where = parse_sql("SELECT a FROM t WHERE a IN (SELECT b FROM u)").where
        assert isinstance(where, InSubquery)
        assert isinstance(where.subquery, SelectStatement)

    def test_not_in_subquery(self):
        where = parse_sql("SELECT a FROM t WHERE a NOT IN (SELECT b FROM u)").where
        assert isinstance(where, InSubquery) and where.negated

    def test_is_null_and_is_not_null(self):
        assert parse_sql("SELECT a FROM t WHERE a IS NULL").where == IsNull(ColumnRef("a"))
        assert parse_sql("SELECT a FROM t WHERE a IS NOT NULL").where == IsNull(
            ColumnRef("a"), negated=True
        )

    def test_date_literal(self):
        expr = self._expr("date '1995-01-01'")
        assert expr == Literal(dt.date(1995, 1, 1))

    def test_invalid_date_literal(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT date 'not-a-date' FROM t")

    def test_interval_literal(self):
        expr = self._expr("interval '10' month")
        assert expr == IntervalLiteral(10, "month")

    def test_function_with_expression_argument(self):
        expr = self._expr("sum(price * (1 - discount))")
        assert isinstance(expr, FuncCall)
        assert expr.name == "sum"

    def test_nested_function_calls(self):
        expr = self._expr("round(avg(x), 2)")
        assert expr.name == "round"
        assert isinstance(expr.args[0], FuncCall)

    def test_null_true_false_literals(self):
        assert self._expr("NULL") == Literal(None)
        assert self._expr("TRUE") == Literal(True)
        assert self._expr("FALSE") == Literal(False)


class TestSGBClauses:
    def test_distance_to_all_full_form(self):
        stmt = parse_sql(
            "SELECT count(*) FROM p GROUP BY x, y "
            "DISTANCE-TO-ALL LINF WITHIN 3 ON-OVERLAP ELIMINATE"
        )
        sgb = stmt.group_by.sgb
        assert sgb.kind == "all"
        assert sgb.metric == "LINF"
        assert sgb.eps == Literal(3)
        assert sgb.on_overlap == "ELIMINATE"

    def test_distance_to_any(self):
        stmt = parse_sql(
            "SELECT count(*) FROM p GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.5"
        )
        sgb = stmt.group_by.sgb
        assert sgb.kind == "any"
        assert sgb.metric == "L2"
        assert sgb.on_overlap is None

    def test_default_metric_is_l2(self):
        stmt = parse_sql("SELECT count(*) FROM p GROUP BY x, y DISTANCE-TO-ALL WITHIN 1")
        assert stmt.group_by.sgb.metric == "L2"

    def test_default_overlap_is_join_any(self):
        stmt = parse_sql("SELECT count(*) FROM p GROUP BY x, y DISTANCE-TO-ALL WITHIN 1")
        assert stmt.group_by.sgb.on_overlap == "JOIN-ANY"

    def test_using_metric_form(self):
        stmt = parse_sql(
            "SELECT count(*) FROM p GROUP BY a, b "
            "DISTANCE-ALL WITHIN 500 USING lone ON-OVERLAP FORM-NEW-GROUP"
        )
        sgb = stmt.group_by.sgb
        assert sgb.kind == "all"
        assert sgb.metric == "LONE"
        assert sgb.on_overlap == "FORM-NEW-GROUP"

    def test_two_word_on_overlap(self):
        stmt = parse_sql(
            "SELECT count(*) FROM p GROUP BY a, b DISTANCE-ALL WITHIN 5 USING ltwo "
            "on overlap join-any"
        )
        assert stmt.group_by.sgb.on_overlap == "JOIN-ANY"

    def test_form_new_shorthand(self):
        stmt = parse_sql(
            "SELECT count(*) FROM p GROUP BY a, b DISTANCE-ALL WITHIN 5 "
            "ON-OVERLAP FORM-NEW"
        )
        assert stmt.group_by.sgb.on_overlap == "FORM-NEW"

    def test_distance_any_shorthand(self):
        stmt = parse_sql("SELECT count(*) FROM p GROUP BY a, b DISTANCE-ANY WITHIN 5 USING ltwo")
        assert stmt.group_by.sgb.kind == "any"
        assert stmt.group_by.sgb.metric == "LTWO"

    def test_eps_can_be_an_expression(self):
        stmt = parse_sql("SELECT count(*) FROM p GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 2 * 3")
        assert stmt.group_by.sgb.eps == BinaryOp("*", Literal(2), Literal(3))

    def test_plain_group_by_unaffected(self):
        stmt = parse_sql("SELECT a, count(*) FROM t GROUP BY a")
        assert stmt.group_by.sgb is None

    def test_missing_within_raises(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT count(*) FROM p GROUP BY x, y DISTANCE-TO-ALL L2 3")

    def test_bad_overlap_action_raises(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql(
                "SELECT count(*) FROM p GROUP BY x, y DISTANCE-TO-ALL L2 WITHIN 3 "
                "ON-OVERLAP MERGE"
            )

    def test_prose_and_between_group_keys(self):
        """The paper's Example 2 writes 'GROUP BY lat and long DISTANCE-TO-ANY ...'."""
        stmt = parse_sql(
            "SELECT count(*) FROM p GROUP BY lat and long DISTANCE-TO-ANY L2 WITHIN 3"
        )
        assert len(stmt.group_by.keys) == 2
