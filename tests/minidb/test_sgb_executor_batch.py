"""Executor-level regressions for the batched SGB physical operator."""

import pytest

from repro.exceptions import DatabaseError, ExecutionError
from repro.minidb import Database


@pytest.fixture
def pts_db():
    db = Database()
    db.execute("CREATE TABLE pts (id INT, x FLOAT, y FLOAT)")
    db.insert_rows("pts", [(1, 0.0, 0.0), (2, 0.3, 0.2), (3, 9.0, 9.0)])
    return db


class TestBatchedExecutor:
    def test_sgb_any_query_through_batch_path(self, pts_db):
        result = pts_db.execute(
            "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.5"
        )
        assert sorted(row[0] for row in result.rows) == [1, 2]

    def test_non_finite_grouping_value_raises_execution_error(self, pts_db):
        pts_db.insert_rows("pts", [(4, float("nan"), 1.0)])
        with pytest.raises(ExecutionError, match="similarity grouping"):
            pts_db.execute(
                "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.5"
            )

    def test_non_finite_error_is_a_database_error(self, pts_db):
        # Engine callers catch DatabaseError; validation must stay inside it.
        pts_db.insert_rows("pts", [(4, float("inf"), 1.0)])
        with pytest.raises(DatabaseError):
            pts_db.execute(
                "SELECT count(*) FROM pts GROUP BY x, y "
                "DISTANCE-TO-ALL LINF WITHIN 0.5 ON-OVERLAP ELIMINATE"
            )

    def test_eliminated_rows_are_not_fed_to_aggregate_arguments(self):
        # The columnar aggregate replay must never evaluate aggregate
        # arguments on rows dropped by ON-OVERLAP ELIMINATE: here the
        # eliminated middle point has v=0, so 1/v on it would blow up even
        # though no surviving group contains it.
        db = Database()
        db.execute("CREATE TABLE m (x FLOAT, y FLOAT, v FLOAT)")
        db.insert_rows("m", [(0.0, 0.0, 1.0), (2.0, 0.0, 2.0), (1.0, 0.0, 0.0)])
        result = db.execute(
            "SELECT x, y, sum(1.0 / v) FROM m GROUP BY x, y "
            "DISTANCE-TO-ALL LINF WITHIN 1.2 ON-OVERLAP ELIMINATE ORDER BY x"
        )
        assert [row[2] for row in result.rows] == [1.0, 0.5]
