"""Tests for engine data types, value coercion, and schemas."""

import datetime as dt

import pytest

from repro.exceptions import CatalogError, SchemaError
from repro.minidb.schema import Column, Schema
from repro.minidb.types import DataType, coerce_value, infer_type


class TestDataTypeParsing:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("INT", DataType.INT),
            ("integer", DataType.INT),
            ("bigint", DataType.INT),
            ("FLOAT", DataType.FLOAT),
            ("double", DataType.FLOAT),
            ("numeric", DataType.FLOAT),
            ("varchar", DataType.TEXT),
            ("text", DataType.TEXT),
            ("DATE", DataType.DATE),
            ("boolean", DataType.BOOL),
        ],
    )
    def test_aliases(self, name, expected):
        assert DataType.parse(name) is expected

    def test_unknown_type_raises(self):
        with pytest.raises(SchemaError):
            DataType.parse("GEOGRAPHY")


class TestCoercion:
    def test_none_passes_through(self):
        assert coerce_value(None, DataType.INT) is None

    def test_int_coercion(self):
        assert coerce_value(5, DataType.INT) == 5
        assert coerce_value(5.0, DataType.INT) == 5
        with pytest.raises(SchemaError):
            coerce_value(5.5, DataType.INT)

    def test_float_coercion(self):
        assert coerce_value(5, DataType.FLOAT) == 5.0
        assert isinstance(coerce_value(5, DataType.FLOAT), float)
        with pytest.raises(SchemaError):
            coerce_value("not-a-number", DataType.FLOAT)

    def test_text_coercion(self):
        assert coerce_value(42, DataType.TEXT) == "42"

    def test_date_coercion(self):
        assert coerce_value("2020-05-17", DataType.DATE) == dt.date(2020, 5, 17)
        assert coerce_value(dt.date(2020, 5, 17), DataType.DATE) == dt.date(2020, 5, 17)
        assert coerce_value(dt.datetime(2020, 5, 17, 12, 30), DataType.DATE) == dt.date(2020, 5, 17)
        with pytest.raises(SchemaError):
            coerce_value("17/05/2020", DataType.DATE)
        with pytest.raises(SchemaError):
            coerce_value(123, DataType.DATE)

    def test_bool_coercion(self):
        assert coerce_value(1, DataType.BOOL) is True
        assert coerce_value(0, DataType.BOOL) is False

    def test_infer_type(self):
        assert infer_type(True) is DataType.BOOL
        assert infer_type(3) is DataType.INT
        assert infer_type(3.5) is DataType.FLOAT
        assert infer_type(dt.date.today()) is DataType.DATE
        assert infer_type("abc") is DataType.TEXT


class TestSchema:
    @pytest.fixture
    def schema(self):
        return Schema.from_pairs(
            [("id", "INT"), ("name", "TEXT"), ("balance", "FLOAT")], qualifier="cust"
        )

    def test_from_pairs_builds_qualified_columns(self, schema):
        assert len(schema) == 3
        assert schema.columns[0].qualified_name == "cust.id"

    def test_unqualified_lookup(self, schema):
        assert schema.index_of("name") == 1
        assert schema.index_of("BALANCE") == 2

    def test_qualified_lookup(self, schema):
        assert schema.index_of("id", "cust") == 0
        with pytest.raises(CatalogError):
            schema.index_of("id", "other")

    def test_unknown_column_raises(self, schema):
        with pytest.raises(CatalogError):
            schema.index_of("missing")

    def test_ambiguous_unqualified_lookup_raises(self):
        a = Schema.from_pairs([("id", "INT")], qualifier="a")
        b = Schema.from_pairs([("id", "INT")], qualifier="b")
        joined = a.concat(b)
        with pytest.raises(CatalogError):
            joined.index_of("id")
        assert joined.index_of("id", "a") == 0
        assert joined.index_of("id", "b") == 1

    def test_with_qualifier_renames_every_column(self, schema):
        renamed = schema.with_qualifier("r1")
        assert renamed.index_of("id", "r1") == 0
        assert not renamed.has_column("id", "cust")

    def test_duplicate_qualified_columns_rejected(self):
        with pytest.raises(SchemaError):
            Schema(
                [Column("x", DataType.INT, "t"), Column("x", DataType.INT, "t")]
            )

    def test_has_column(self, schema):
        assert schema.has_column("id")
        assert schema.has_column("id", "cust")
        assert not schema.has_column("nope")

    def test_names_preserved_in_order(self, schema):
        assert schema.names() == ["id", "name", "balance"]
