"""SQL-level tests for the ``WINDOW n [SLIDE m]`` streaming SGB clause."""

from __future__ import annotations

import random

import pytest

from repro.core.api import sgb_any
from repro.exceptions import DatabaseError
from repro.minidb.database import Database
from repro.minidb.sql.lexer import tokenize
from repro.minidb.sql.parser import parse_sql


@pytest.fixture
def stream_db():
    db = Database()
    db.execute("CREATE TABLE moves (id INT, x FLOAT, y FLOAT, v FLOAT)")
    rng = random.Random(19)
    rows = []
    for i in range(90):
        if rng.random() < 0.8:
            cx, cy = rng.choice([(1.0, 1.0), (6.0, 6.0), (3.0, 8.0)])
            x, y = cx + rng.uniform(-0.5, 0.5), cy + rng.uniform(-0.5, 0.5)
        else:
            x, y = rng.uniform(0, 10), rng.uniform(0, 10)
        rows.append(f"({i}, {x:.4f}, {y:.4f}, {rng.uniform(0, 5):.4f})")
    db.execute(f"INSERT INTO moves VALUES {', '.join(rows)}")
    return db


class TestParsing:
    def test_window_and_slide_parse(self):
        stmt = parse_sql(
            "SELECT count(*) FROM t GROUP BY x, y "
            "DISTANCE-TO-ANY L2 WITHIN 1.0 WINDOW 100 SLIDE 25"
        )
        sgb = stmt.group_by.sgb
        assert sgb.window is not None and sgb.slide is not None

    def test_window_without_slide_parses(self):
        stmt = parse_sql(
            "SELECT count(*) FROM t GROUP BY x, y DISTANCE-TO-ANY WITHIN 1.0 WINDOW 50"
        )
        sgb = stmt.group_by.sgb
        assert sgb.window is not None and sgb.slide is None

    def test_window_and_workers_in_either_order(self):
        for clause in ("WINDOW 40 WORKERS 2", "WORKERS 2 WINDOW 40"):
            stmt = parse_sql(
                f"SELECT count(*) FROM t GROUP BY x, y "
                f"DISTANCE-TO-ANY WITHIN 1.0 {clause}"
            )
            sgb = stmt.group_by.sgb
            assert sgb.window is not None and sgb.workers is not None

    def test_window_and_slide_are_keywords(self):
        kinds = {t.value.upper() for t in tokenize("WINDOW SLIDE") if t.value}
        assert {"WINDOW", "SLIDE"} <= kinds


class TestPlanning:
    def test_window_shows_in_explain(self, stream_db):
        plan = stream_db.explain(
            "SELECT count(*) FROM moves GROUP BY x, y "
            "DISTANCE-TO-ANY L2 WITHIN 1.2 WINDOW 30 SLIDE 10"
        )
        assert "WINDOW 30 SLIDE 10" in plan

    @pytest.mark.parametrize(
        "clause,fragment",
        [
            ("DISTANCE-TO-ALL L2 WITHIN 1.0 WINDOW 10", "requires DISTANCE-TO-ANY"),
            ("DISTANCE-TO-ANY L2 WITHIN 1.0 WINDOW 0", "positive integer"),
            ("DISTANCE-TO-ANY L2 WITHIN 1.0 WINDOW 10 SLIDE 0", "positive integer"),
            ("DISTANCE-TO-ANY L2 WITHIN 1.0 WINDOW 10 SLIDE 20", "must not exceed"),
            ("DISTANCE-TO-ANY L2 WITHIN 1.0 WINDOW 10 SLIDE 4", "multiple of"),
            ("DISTANCE-TO-ANY L2 WITHIN 1.0 WINDOW 2.5", "positive integer"),
        ],
    )
    def test_invalid_window_specs_rejected(self, stream_db, clause, fragment):
        with pytest.raises(DatabaseError, match=fragment):
            stream_db.execute(f"SELECT count(*) FROM moves GROUP BY x, y {clause}")

    def test_window_rejects_all_pairs_strategy(self, stream_db):
        # The streaming pipeline is grid/index only; an all-pairs ablation
        # through WINDOW must fail loudly instead of measuring the wrong path.
        sql = (
            "SELECT count(*) FROM moves GROUP BY x, y "
            "DISTANCE-TO-ANY L2 WITHIN 1.2 WINDOW 30"
        )
        with pytest.raises(DatabaseError, match="all-pairs"):
            stream_db.execute(sql, sgb_strategy="all-pairs")
        assert stream_db.execute(sql, sgb_strategy="index").rows


class TestExecution:
    def test_window_id_column_leads_the_schema(self, stream_db):
        result = stream_db.execute(
            "SELECT window_id, x, count(*) FROM moves GROUP BY x, y "
            "DISTANCE-TO-ANY L2 WITHIN 1.2 WINDOW 30 SLIDE 15"
        )
        assert result.columns[0] == "window_id"
        assert all(isinstance(row[0], int) for row in result.rows)

    def test_tumbling_window_groups_match_api_streaming(self, stream_db):
        eps, size = 1.2, 30
        result = stream_db.execute(
            "SELECT window_id, count(*) FROM moves GROUP BY x, y "
            f"DISTANCE-TO-ANY L2 WITHIN {eps} WINDOW {size}"
        )
        points = [
            (row[0], row[1])
            for row in stream_db.execute("SELECT x, y FROM moves").rows
        ]
        expected = {}
        for window_id in range(3):
            live = points[window_id * size : (window_id + 1) * size]
            grouping = sgb_any(live, eps=eps, workers=1)
            expected[window_id] = sorted(len(g) for g in grouping.groups)
        got = {}
        for row in result.rows:
            got.setdefault(row[0], []).append(row[1])
        assert {k: sorted(v) for k, v in got.items()} == expected

    def test_sliding_window_row_counts_track_live_points(self, stream_db):
        result = stream_db.execute(
            "SELECT window_id, count(*) FROM moves GROUP BY x, y "
            "DISTANCE-TO-ANY L2 WITHIN 1.2 WINDOW 30 SLIDE 10"
        )
        per_window = {}
        for row in result.rows:
            per_window[row[0]] = per_window.get(row[0], 0) + row[1]
        # 90 points, slide 10 -> 9 flushes; each covers min(30, seen) points.
        assert len(per_window) == 9
        assert per_window[0] == 10 and per_window[1] == 20
        assert all(per_window[w] == 30 for w in range(2, 9))

    def test_workers_option_matches_serial_window_run(self, stream_db):
        base = (
            "SELECT window_id, count(*) FROM moves GROUP BY x, y "
            "DISTANCE-TO-ANY L2 WITHIN 1.2 WINDOW 30 SLIDE 15"
        )
        serial = stream_db.execute(base + " WORKERS 1")
        parallel = stream_db.execute(base + " WORKERS 2")
        assert sorted(map(tuple, serial.rows)) == sorted(map(tuple, parallel.rows))

    def test_aggregates_replay_over_window_members(self, stream_db):
        result = stream_db.execute(
            "SELECT window_id, count(*), avg(v), min(id) FROM moves GROUP BY x, y "
            "DISTANCE-TO-ANY L2 WITHIN 1.2 WINDOW 45"
        )
        # Window 1 members are rows 45..89: every min(id) there must be >= 45.
        for row in result.rows:
            if row[0] == 1:
                assert row[3] >= 45

    def test_empty_input_produces_no_windows(self):
        db = Database()
        db.execute("CREATE TABLE empty_t (x FLOAT, y FLOAT)")
        result = db.execute(
            "SELECT window_id, count(*) FROM empty_t GROUP BY x, y "
            "DISTANCE-TO-ANY L2 WITHIN 1.0 WINDOW 10"
        )
        assert result.rows == []

    def test_non_windowed_clause_has_no_window_id(self, stream_db):
        result = stream_db.execute(
            "SELECT count(*) FROM moves GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1.2"
        )
        assert "window_id" not in result.columns
