"""``EXPLAIN SELECT``: lexer → parser → planner → plan-tree rows.

EXPLAIN never executes the query; the similarity operators show the cost
planner's *static* choice (from base-table statistics or synthetic
estimates), with mode, worker/shard fan-out, and estimated cost.
"""

from __future__ import annotations

import random

import pytest

from repro.engine.planner import ENV_WORKERS
from repro.exceptions import SqlSyntaxError
from repro.minidb.database import Database


@pytest.fixture(autouse=True)
def _delegated_environment(monkeypatch):
    monkeypatch.delenv(ENV_WORKERS, raising=False)
    monkeypatch.setenv("SGB_COST_PROFILE", "off")
    from repro.engine.calibrate import reset_profile_cache

    reset_profile_cache()
    yield
    reset_profile_cache()


@pytest.fixture()
def db():
    database = Database()
    database.create_table("pts", [("x", "FLOAT"), ("y", "FLOAT"), ("v", "INT")])
    rng = random.Random(0)
    database.insert_rows(
        "pts", [(rng.random(), rng.random(), i % 7) for i in range(400)]
    )
    database.create_table("pois", [("x", "FLOAT"), ("y", "FLOAT")])
    database.insert_rows("pois", [(rng.random(), rng.random()) for _ in range(200)])
    return database


def _plan_text(db, sql):
    result = db.execute(sql)
    assert result.columns == ["QUERY PLAN"]
    assert result.rowcount == len(result.rows)
    return "\n".join(line for (line,) in result.rows)


class TestExplainStatement:
    def test_explain_sgb_any_shows_mode_and_cost(self, db):
        text = _plan_text(
            db,
            "EXPLAIN SELECT x, y, COUNT(*) AS n FROM pts "
            "GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.05",
        )
        assert "SGBAggregate" in text
        assert "sgb_any: mode=" in text
        assert "est_cost=" in text
        assert "est_rows=" in text
        assert "SeqScan(pts)" in text

    def test_explain_sgb_all_shows_plan(self, db):
        text = _plan_text(
            db,
            "EXPLAIN SELECT x, y, COUNT(*) AS n FROM pts "
            "GROUP BY x, y DISTANCE-TO-ALL L2 WITHIN 0.05",
        )
        assert "sgb_all: mode=" in text and "est_cost=" in text

    def test_explain_window_query(self, db):
        text = _plan_text(
            db,
            "EXPLAIN SELECT x, y, COUNT(*) AS n FROM pts "
            "GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.05 WINDOW 100 SLIDE 50",
        )
        assert "WINDOW 100 SLIDE 50" in text
        assert "mode=streaming window=100 slide=50" in text

    def test_explain_similarity_join(self, db):
        text = _plan_text(
            db,
            "EXPLAIN SELECT COUNT(*) AS n FROM pts "
            "SIMILARITY JOIN pois ON DISTANCE(pts.x, pts.y, pois.x, pois.y) "
            "WITHIN 0.05",
        )
        assert "SimilarityJoin" in text
        assert "eps_join: mode=" in text and "est_cost=" in text

    def test_explain_knn_join(self, db):
        text = _plan_text(
            db,
            "EXPLAIN SELECT COUNT(*) AS n FROM pts "
            "SIMILARITY JOIN pois ON DISTANCE(pts.x, pts.y, pois.x, pois.y) KNN 3",
        )
        assert "knn_join: mode=" in text

    def test_explain_forced_workers_bypasses_planner(self, db):
        text = _plan_text(
            db,
            "EXPLAIN SELECT x, y, COUNT(*) AS n FROM pts "
            "GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.05 WORKERS 2",
        )
        assert "mode=sharded workers=2 (forced by WORKERS)" in text
        assert "sgb_any: mode=" not in text

    def test_explain_does_not_execute(self, db, monkeypatch):
        import repro.minidb.exec.sgb as sgb_mod

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("EXPLAIN must not execute the query")

        monkeypatch.setattr(sgb_mod.SGBAggregate, "rows", boom)
        _plan_text(
            db,
            "EXPLAIN SELECT x, y, COUNT(*) AS n FROM pts "
            "GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.05",
        )

    def test_explain_plain_select(self, db):
        text = _plan_text(db, "EXPLAIN SELECT x FROM pts WHERE x > 0.5")
        assert "SeqScan(pts)" in text
        assert "est_rows=400" in text

    def test_explain_non_select_rejected(self, db):
        with pytest.raises(SqlSyntaxError, match="only SELECT"):
            db.execute("EXPLAIN INSERT INTO pts VALUES (1.0, 2.0, 3)")
        with pytest.raises(SqlSyntaxError, match="only SELECT"):
            db.execute("EXPLAIN CREATE TABLE t (x FLOAT)")

    def test_database_explain_accepts_both_forms(self, db):
        sql = (
            "SELECT x, y, COUNT(*) AS n FROM pts "
            "GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.05"
        )
        assert db.explain(sql) == db.explain("EXPLAIN " + sql)


class TestQueryResultPlan:
    def test_select_result_carries_plan(self, db):
        result = db.execute(
            "SELECT x, y, COUNT(*) AS n FROM pts "
            "GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.05"
        )
        assert result.plan is not None
        assert result.plan.op == "sgb_any"
        assert result.plan.mode in ("scalar", "batch", "sharded")

    def test_join_result_carries_plan(self, db):
        result = db.execute(
            "SELECT COUNT(*) AS n FROM pts "
            "SIMILARITY JOIN pois ON DISTANCE(pts.x, pts.y, pois.x, pois.y) "
            "WITHIN 0.05"
        )
        assert result.plan is not None and result.plan.op == "eps_join"

    def test_plain_select_has_no_plan(self, db):
        assert db.execute("SELECT x FROM pts LIMIT 5").plan is None

    def test_forced_workers_has_no_plan(self, db):
        result = db.execute(
            "SELECT x, y, COUNT(*) AS n FROM pts "
            "GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.05 WORKERS 1"
        )
        assert result.plan is None


class TestStaticStatistics:
    def test_table_stats_cached_until_mutation(self, db):
        table = db.table("pts")
        first = table.point_stats([0, 1])
        assert table.point_stats([0, 1]) is first
        db.insert_rows("pts", [(0.5, 0.5, 1)])
        second = table.point_stats([0, 1])
        assert second is not first
        assert second.count == first.count + 1

    def test_non_numeric_columns_degrade_to_count(self):
        db = Database()
        db.create_table("t", [("name", "TEXT"), ("x", "FLOAT")])
        db.insert_rows("t", [("a", 1.0), ("b", 2.0)])
        stats = db.table("t").point_stats([0, 1])
        assert stats.count == 2  # synthetic fallback, never an error

    def test_derived_table_uses_synthetic_stats(self, db):
        # The SGB input is a projection of a derived table: EXPLAIN must
        # still produce a plan line (synthetic statistics path).
        text = _plan_text(
            db,
            "EXPLAIN SELECT m.a, m.b, COUNT(*) AS n FROM "
            "(SELECT x + 0.0 AS a, y + 0.0 AS b FROM pts) m "
            "GROUP BY m.a, m.b DISTANCE-TO-ANY L2 WITHIN 0.05",
        )
        assert "sgb_any: mode=" in text
