"""Tests for the SQL lexer, including the SGB compound keywords."""

import pytest

from repro.exceptions import SqlSyntaxError
from repro.minidb.sql.lexer import TokenType, tokenize


def kinds(sql):
    return [(t.type, t.value) for t in tokenize(sql) if t.type is not TokenType.EOF]


class TestBasicTokens:
    def test_keywords_upper_cased(self):
        tokens = kinds("select from where")
        assert tokens == [
            (TokenType.KEYWORD, "SELECT"),
            (TokenType.KEYWORD, "FROM"),
            (TokenType.KEYWORD, "WHERE"),
        ]

    def test_identifiers_preserve_case(self):
        tokens = kinds("SELECT MyColumn")
        assert tokens[1] == (TokenType.IDENTIFIER, "MyColumn")

    def test_numbers(self):
        tokens = kinds("1 2.5 0.001 3e2 1.5e-3")
        assert [t[0] for t in tokens] == [TokenType.NUMBER] * 5

    def test_strings_with_escaped_quote(self):
        tokens = kinds("'it''s fine'")
        assert tokens == [(TokenType.STRING, "it's fine")]

    def test_unterminated_string_raises(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT 'oops")

    def test_operators_and_punctuation(self):
        tokens = kinds("a >= 1 AND b <> 2, (c)")
        values = [t[1] for t in tokens]
        assert ">=" in values and "<>" in values and "(" in values and ")" in values

    def test_line_comment_skipped(self):
        tokens = kinds("SELECT 1 -- this is a comment\n , 2")
        values = [t[1] for t in tokens]
        assert values == ["SELECT", "1", ",", "2"]

    def test_quoted_identifier(self):
        tokens = kinds('SELECT "Weird Name"')
        assert tokens[1] == (TokenType.IDENTIFIER, "Weird Name")

    def test_unexpected_character_raises(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT @foo")

    def test_eof_token_always_present(self):
        assert tokenize("")[-1].type is TokenType.EOF


class TestCompoundKeywords:
    def test_distance_to_all(self):
        tokens = kinds("GROUP BY x DISTANCE-TO-ALL L2 WITHIN 3")
        values = [t[1] for t in tokens]
        assert "DISTANCE-TO-ALL" in values

    def test_distance_to_any_lower_case(self):
        tokens = kinds("distance-to-any")
        assert tokens == [(TokenType.KEYWORD, "DISTANCE-TO-ANY")]

    def test_on_overlap_and_actions(self):
        values = [t[1] for t in kinds("ON-OVERLAP JOIN-ANY ELIMINATE FORM-NEW-GROUP")]
        assert values == ["ON-OVERLAP", "JOIN-ANY", "ELIMINATE", "FORM-NEW-GROUP"]

    def test_form_new_shorthand(self):
        values = [t[1] for t in kinds("on-overlap form-new")]
        assert values == ["ON-OVERLAP", "FORM-NEW"]

    def test_distance_all_shorthand(self):
        values = [t[1] for t in kinds("DISTANCE-ALL WITHIN 0.5")]
        assert values[0] == "DISTANCE-ALL"

    def test_subtraction_not_confused_with_compound(self):
        """``a - b`` and ``join - any`` as arithmetic must stay three tokens."""
        values = [t[1] for t in kinds("price - discount")]
        assert values == ["price", "-", "discount"]

    def test_join_keyword_not_swallowed(self):
        values = [t[1] for t in kinds("a JOIN b ON x = y")]
        assert "JOIN" in values and "ON" in values

    def test_compound_requires_word_boundary(self):
        # "DISTANCE-ALLOWED" is not the keyword DISTANCE-ALL.
        values = [t[1] for t in kinds("DISTANCE-ALLOWED")]
        assert values == ["DISTANCE", "-", "ALLOWED"]
