"""Tests for scalar and aggregate function implementations."""

import pytest

from repro.exceptions import AggregateError
from repro.geometry.polygon import Polygon
from repro.minidb.functions import (
    SCALAR_FUNCTIONS,
    create_aggregate,
    is_aggregate_function,
)


class TestScalarFunctions:
    def test_null_safety(self):
        assert SCALAR_FUNCTIONS["abs"](None) is None
        assert SCALAR_FUNCTIONS["round"](None, 2) is None

    def test_coalesce(self):
        assert SCALAR_FUNCTIONS["coalesce"](None, None, 3, 4) == 3
        assert SCALAR_FUNCTIONS["coalesce"](None, None) is None

    def test_string_functions(self):
        assert SCALAR_FUNCTIONS["lower"]("ABC") == "abc"
        assert SCALAR_FUNCTIONS["upper"]("abc") == "ABC"
        assert SCALAR_FUNCTIONS["length"]("abcd") == 4

    def test_math_functions(self):
        assert SCALAR_FUNCTIONS["sqrt"](16) == 4
        assert SCALAR_FUNCTIONS["power"](2, 10) == 1024
        assert SCALAR_FUNCTIONS["greatest"](1, 5, 3) == 5
        assert SCALAR_FUNCTIONS["least"](1, 5, 3) == 1


class TestAggregateRegistry:
    def test_is_aggregate_function(self):
        assert is_aggregate_function("sum")
        assert is_aggregate_function("COUNT")
        assert is_aggregate_function("st_polygon")
        assert not is_aggregate_function("abs")

    def test_unknown_aggregate_raises(self):
        with pytest.raises(AggregateError):
            create_aggregate("median_absolute_deviation")


class TestAccumulators:
    def _run(self, name, values, star=False):
        acc = create_aggregate(name, star=star)
        for v in values:
            acc.step(v)
        return acc.final()

    def test_count_star_counts_everything(self):
        assert self._run("count", [1, None, "x"], star=True) == 3

    def test_count_skips_nulls(self):
        assert self._run("count", [1, None, 2]) == 2

    def test_sum(self):
        assert self._run("sum", [1, 2, 3.5]) == 6.5
        assert self._run("sum", [None, None]) is None
        assert self._run("sum", [1, None, 2]) == 3

    def test_avg_and_alias(self):
        assert self._run("avg", [2, 4, 6]) == 4
        assert self._run("average", [2, 4]) == 3
        assert self._run("avg", []) is None

    def test_min_max(self):
        assert self._run("min", [5, 2, 8]) == 2
        assert self._run("max", [5, 2, 8]) == 8
        assert self._run("min", [None]) is None

    def test_array_agg_and_list_id(self):
        assert self._run("array_agg", [3, 1, 2]) == [3, 1, 2]
        assert self._run("list_id", ["u1", "u2"]) == ["u1", "u2"]

    def test_stddev(self):
        assert self._run("stddev", [2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(2.138, abs=1e-3)
        assert self._run("stddev", [1]) is None

    def test_st_polygon_builds_hull(self):
        result = self._run("st_polygon", [(0, 0), (2, 0), (2, 2), (0, 2), (1, 1)])
        assert isinstance(result, Polygon)
        assert result.area() == pytest.approx(4.0)

    def test_st_polygon_ignores_null_points(self):
        result = self._run("st_polygon", [(0, 0), None, (None, 1), (1, 1)])
        assert isinstance(result, Polygon)
        assert result.vertex_count == 2

    def test_st_polygon_empty_returns_none(self):
        assert self._run("st_polygon", []) is None

    def test_st_polygon_rejects_bad_arity(self):
        acc = create_aggregate("st_polygon")
        with pytest.raises(AggregateError):
            acc.step((1, 2, 3))
