"""End-to-end SQL tests against the Database facade (non-SGB features)."""

import datetime as dt

import pytest

from repro.exceptions import CatalogError, PlanningError, SqlSyntaxError
from repro.minidb import Database


class TestDdlAndDml:
    def test_create_insert_select_roundtrip(self):
        db = Database()
        db.execute("CREATE TABLE t (id INT, v FLOAT)")
        result = db.execute("INSERT INTO t VALUES (1, 1.5), (2, 2.5)")
        assert result.rowcount == 2
        rows = db.execute("SELECT * FROM t").rows
        assert rows == [(1, 1.5), (2, 2.5)]

    def test_create_duplicate_table_raises(self):
        db = Database()
        db.execute("CREATE TABLE t (id INT)")
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE t (id INT)")

    def test_drop_table(self):
        db = Database()
        db.execute("CREATE TABLE t (id INT)")
        db.execute("DROP TABLE t")
        assert not db.has_table("t")

    def test_insert_with_column_list_reorders(self):
        db = Database()
        db.execute("CREATE TABLE t (a INT, b TEXT)")
        db.execute("INSERT INTO t (b, a) VALUES ('x', 1)")
        assert db.execute("SELECT * FROM t").rows == [(1, "x")]

    def test_insert_date_literal(self):
        db = Database()
        db.execute("CREATE TABLE t (d DATE)")
        db.execute("INSERT INTO t VALUES (date '2001-09-09')")
        assert db.execute("SELECT * FROM t").rows == [(dt.date(2001, 9, 9),)]

    def test_syntax_error_reported(self):
        db = Database()
        with pytest.raises(SqlSyntaxError):
            db.execute("SELEKT 1")

    def test_query_unknown_table_raises(self):
        with pytest.raises(CatalogError):
            Database().execute("SELECT * FROM ghosts")


class TestSelectBasics:
    def test_projection_and_alias(self, simple_db):
        result = simple_db.execute("SELECT id, x + y AS total FROM points WHERE id = 2")
        assert result.columns == ["id", "total"]
        assert result.rows == [(2, 1.0)]

    def test_where_and_or_not(self, simple_db):
        rows = simple_db.execute(
            "SELECT id FROM points WHERE (x > 4 AND y > 4) OR id = 1"
        ).rows
        assert sorted(r[0] for r in rows) == [1, 4, 5, 6]

    def test_between_and_in_list(self, simple_db):
        rows = simple_db.execute("SELECT id FROM points WHERE x BETWEEN 0.4 AND 1.0").rows
        assert sorted(r[0] for r in rows) == [2, 3]
        rows = simple_db.execute("SELECT id FROM points WHERE label IN ('a', 'c')").rows
        assert sorted(r[0] for r in rows) == [1, 2, 5, 6]

    def test_order_by_and_limit(self, simple_db):
        result = simple_db.execute("SELECT id FROM points ORDER BY x DESC LIMIT 3")
        assert [r[0] for r in result.rows] == [6, 5, 4]

    def test_order_by_ordinal(self, simple_db):
        result = simple_db.execute("SELECT id, x FROM points ORDER BY 2 DESC LIMIT 2")
        assert [r[0] for r in result.rows] == [6, 5]

    def test_distinct(self, simple_db):
        result = simple_db.execute("SELECT DISTINCT label FROM points")
        assert sorted(r[0] for r in result.rows) == ["a", "b", "c"]

    def test_select_star(self, simple_db):
        result = simple_db.execute("SELECT * FROM tags")
        assert len(result.rows) == 4
        assert result.columns == ["pid", "tag", "weight"]

    def test_scalar_helper(self, simple_db):
        assert simple_db.execute("SELECT count(*) FROM points").scalar() == 6

    def test_scalar_on_multi_row_result_raises(self, simple_db):
        with pytest.raises(PlanningError):
            simple_db.execute("SELECT id FROM points").scalar()

    def test_column_helper_and_to_dicts(self, simple_db):
        result = simple_db.execute("SELECT id, label FROM points ORDER BY id")
        assert result.column("label")[:2] == ["a", "a"]
        assert result.to_dicts()[0] == {"id": 1, "label": "a"}
        with pytest.raises(PlanningError):
            result.column("missing")


class TestJoins:
    def test_comma_join_with_where(self, simple_db):
        result = simple_db.execute(
            "SELECT p.id, t.tag FROM points p, tags t WHERE p.id = t.pid ORDER BY p.id"
        )
        assert result.rows == [(1, "red"), (2, "blue"), (4, "red"), (6, "green")]

    def test_explicit_join_on(self, simple_db):
        result = simple_db.execute(
            "SELECT p.id, t.weight FROM points p JOIN tags t ON p.id = t.pid "
            "WHERE t.weight > 1 ORDER BY p.id"
        )
        assert result.rows == [(2, 2.0), (6, 3.0)]

    def test_three_way_join(self, simple_db):
        simple_db.execute("CREATE TABLE colors (name TEXT, code INT)")
        simple_db.execute("INSERT INTO colors VALUES ('red', 1), ('blue', 2), ('green', 3)")
        result = simple_db.execute(
            "SELECT p.id, c.code FROM points p, tags t, colors c "
            "WHERE p.id = t.pid AND t.tag = c.name ORDER BY p.id"
        )
        assert result.rows == [(1, 1), (2, 2), (4, 1), (6, 3)]

    def test_join_uses_hash_join_in_plan(self, simple_db):
        plan = simple_db.explain(
            "SELECT p.id FROM points p, tags t WHERE p.id = t.pid"
        )
        assert "HashJoin" in plan

    def test_cross_join_when_no_equi_condition(self, simple_db):
        result = simple_db.execute(
            "SELECT p.id FROM points p, tags t WHERE p.x > t.weight"
        )
        plan = simple_db.explain("SELECT p.id FROM points p, tags t WHERE p.x > t.weight")
        assert "NestedLoopJoin" in plan
        assert len(result.rows) > 0


class TestSubqueries:
    def test_in_subquery(self, simple_db):
        result = simple_db.execute(
            "SELECT id FROM points WHERE id IN (SELECT pid FROM tags WHERE tag = 'red') "
            "ORDER BY id"
        )
        assert [r[0] for r in result.rows] == [1, 4]

    def test_not_in_subquery(self, simple_db):
        result = simple_db.execute(
            "SELECT id FROM points WHERE id NOT IN (SELECT pid FROM tags) ORDER BY id"
        )
        assert [r[0] for r in result.rows] == [3, 5]

    def test_derived_table_with_aggregation(self, simple_db):
        result = simple_db.execute(
            "SELECT label, total FROM "
            "(SELECT label, sum(x) AS total FROM points GROUP BY label) AS sums "
            "ORDER BY label"
        )
        assert [r[0] for r in result.rows] == ["a", "b", "c"]

    def test_in_subquery_with_having(self, simple_db):
        result = simple_db.execute(
            "SELECT id FROM points WHERE label IN "
            "(SELECT label FROM points GROUP BY label HAVING count(*) > 1) ORDER BY id"
        )
        assert len(result.rows) == 6  # every label appears twice


class TestAggregation:
    def test_global_aggregates(self, simple_db):
        result = simple_db.execute("SELECT count(*), min(x), max(y), avg(x) FROM points")
        count, min_x, max_y, avg_x = result.rows[0]
        assert count == 6
        assert min_x == 0.0
        assert max_y == 9.0
        assert avg_x == pytest.approx(20.3 / 6)

    def test_group_by_with_having(self, simple_db):
        result = simple_db.execute(
            "SELECT label, count(*) AS n FROM points GROUP BY label HAVING count(*) >= 2 "
            "ORDER BY label"
        )
        assert result.rows == [("a", 2), ("b", 2), ("c", 2)]

    def test_aggregate_of_expression(self, simple_db):
        result = simple_db.execute("SELECT sum(x * 2 + 1) FROM points")
        assert result.scalar() == pytest.approx(2 * 20.3 + 6)

    def test_expression_of_aggregates(self, simple_db):
        result = simple_db.execute("SELECT max(x) - min(x) AS span FROM points")
        assert result.scalar() == pytest.approx(9.0)

    def test_array_agg(self, simple_db):
        result = simple_db.execute(
            "SELECT label, array_agg(id) FROM points GROUP BY label ORDER BY label"
        )
        assert result.rows[0] == ("a", [1, 2])

    def test_count_distinct_rows_via_distinct_subquery(self, simple_db):
        result = simple_db.execute(
            "SELECT count(*) FROM (SELECT DISTINCT label FROM points) AS labels"
        )
        assert result.scalar() == 3

    def test_group_key_in_select_without_aggregate(self, simple_db):
        result = simple_db.execute("SELECT label FROM points GROUP BY label ORDER BY label")
        assert [r[0] for r in result.rows] == ["a", "b", "c"]

    def test_having_without_select_aggregate(self, simple_db):
        result = simple_db.execute(
            "SELECT label FROM points GROUP BY label HAVING sum(x) > 5 ORDER BY label"
        )
        assert [r[0] for r in result.rows] == ["b", "c"]


class TestExplain:
    def test_explain_lists_operators(self, simple_db):
        plan = simple_db.explain("SELECT count(*) FROM points WHERE x > 1")
        assert "HashAggregate" in plan
        assert "Filter" in plan
        assert "SeqScan(points)" in plan

    def test_explain_rejects_non_select(self, simple_db):
        with pytest.raises(PlanningError):
            simple_db.explain("CREATE TABLE z (a INT)")
