"""The fused SIMILARITY JOIN → SGB executor route: engagement and bit-identity.

The reference for every equality below is the same query run with the fused
trace disabled (``_trace_fusable_join`` monkeypatched to ``None``), which
forces the executor down the materialize-pairs-then-group pipeline the
fused route replaces.
"""

from __future__ import annotations

import random

import pytest

from repro.minidb.database import Database
from repro.minidb.exec.sgb import SGBAggregate


@pytest.fixture()
def db():
    database = Database()
    database.execute("CREATE TABLE checkins (cid INT, x FLOAT, y FLOAT)")
    database.execute("CREATE TABLE pois (pid INT, v INT, x FLOAT, y FLOAT)")
    rng = random.Random(77)
    centers = [(rng.uniform(0, 12), rng.uniform(0, 12)) for _ in range(5)]
    checkins, pois = [], []
    for i in range(120):
        cx, cy = centers[rng.randrange(len(centers))]
        checkins.append((i, cx + rng.gauss(0, 0.4), cy + rng.gauss(0, 0.4)))
    for i in range(60):
        cx, cy = centers[rng.randrange(len(centers))]
        pois.append(
            (i, rng.randrange(0, 40), cx + rng.gauss(0, 0.4), cy + rng.gauss(0, 0.4))
        )
    database.insert_rows("checkins", checkins)
    database.insert_rows("pois", pois)
    return database


FUSED_SQL = (
    "SELECT px, py, {aggs} FROM "
    "(SELECT p.x AS px, p.y AS py, p.v AS pv FROM checkins c "
    "SIMILARITY JOIN pois p ON DISTANCE(c.x, c.y, p.x, p.y) WITHIN 1.0) m "
    "GROUP BY px, py DISTANCE-TO-ANY L2 WITHIN 1.5 ORDER BY px, py"
)


def _reference(db, sql, monkeypatch):
    """Run ``sql`` with the fused trace disabled: the two-step pipeline."""
    with pytest.MonkeyPatch.context() as mp:
        mp.setattr(SGBAggregate, "_trace_fusable_join", lambda self: None)
        return db.execute(sql).rows


class TestFusedRoute:
    def test_star_only_aggregates_match_two_step(self, db, monkeypatch):
        sql = FUSED_SQL.format(aggs="count(*) AS c")
        expected = _reference(db, sql, monkeypatch)
        assert db.execute(sql).rows == expected
        assert expected  # the join really produced groups

    def test_value_aggregates_match_two_step(self, db, monkeypatch):
        sql = FUSED_SQL.format(
            aggs="count(*) AS c, sum(pv) AS s, avg(pv) AS a, min(pv) AS lo"
        )
        expected = _reference(db, sql, monkeypatch)
        assert db.execute(sql).rows == expected

    def test_grouping_on_the_left_side(self, db, monkeypatch):
        sql = (
            "SELECT gx, gy, count(*) AS c FROM "
            "(SELECT c.x AS gx, c.y AS gy FROM checkins c "
            "SIMILARITY JOIN pois p ON DISTANCE(c.x, c.y, p.x, p.y) WITHIN 1.0) m "
            "GROUP BY gx, gy DISTANCE-TO-ANY L2 WITHIN 1.5 ORDER BY gx, gy"
        )
        expected = _reference(db, sql, monkeypatch)
        assert db.execute(sql).rows == expected

    def test_knn_join_feed_matches_two_step(self, db, monkeypatch):
        sql = FUSED_SQL.format(aggs="count(*) AS c").replace("WITHIN 1.0", "KNN 3")
        expected = _reference(db, sql, monkeypatch)
        assert db.execute(sql).rows == expected

    def test_fused_route_actually_engages(self, db, monkeypatch):
        traced = []
        original = SGBAggregate._trace_fusable_join

        def spy(self):
            result = original(self)
            traced.append(result is not None)
            return result

        monkeypatch.setattr(SGBAggregate, "_trace_fusable_join", spy)
        db.execute(FUSED_SQL.format(aggs="count(*) AS c"))
        assert traced == [True]

    def test_mixed_side_keys_fall_back(self, db, monkeypatch):
        # Grouping keys drawn from both join sides cannot be fused; the
        # trace must refuse and the two-step pipeline still answers.
        traced = []
        original = SGBAggregate._trace_fusable_join

        def spy(self):
            result = original(self)
            traced.append(result is not None)
            return result

        monkeypatch.setattr(SGBAggregate, "_trace_fusable_join", spy)
        sql = (
            "SELECT gx, py, count(*) AS c FROM "
            "(SELECT c.x AS gx, p.y AS py FROM checkins c "
            "SIMILARITY JOIN pois p ON DISTANCE(c.x, c.y, p.x, p.y) WITHIN 1.0) m "
            "GROUP BY gx, py DISTANCE-TO-ANY L2 WITHIN 1.5 ORDER BY gx, py"
        )
        rows = db.execute(sql).rows
        assert traced == [False]
        assert rows  # still answered via materialization

    def test_sgb_all_is_never_fused(self, db, monkeypatch):
        traced = []
        original = SGBAggregate._trace_fusable_join

        def spy(self):
            result = original(self)
            traced.append(result is not None)
            return result

        monkeypatch.setattr(SGBAggregate, "_trace_fusable_join", spy)
        sql = FUSED_SQL.format(aggs="count(*) AS c").replace(
            "DISTANCE-TO-ANY L2 WITHIN 1.5",
            "DISTANCE-TO-ALL L2 WITHIN 1.5 ON-OVERLAP ELIMINATE",
        )
        db.execute(sql)
        assert traced == [False]

    def test_empty_join_yields_no_groups(self, monkeypatch):
        database = Database()
        database.execute("CREATE TABLE a (x FLOAT, y FLOAT)")
        database.execute("CREATE TABLE b (x FLOAT, y FLOAT)")
        database.insert_rows("a", [(0.0, 0.0)])
        database.insert_rows("b", [(50.0, 50.0)])
        sql = (
            "SELECT bx, by, count(*) AS c FROM "
            "(SELECT b.x AS bx, b.y AS by FROM a "
            "SIMILARITY JOIN b ON DISTANCE(a.x, a.y, b.x, b.y) WITHIN 1.0) m "
            "GROUP BY bx, by DISTANCE-TO-ANY L2 WITHIN 1.0"
        )
        assert database.execute(sql).rows == []
