"""The SGB clause's WORKERS option: parsing, planning, and executor parity."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import PlanningError
from repro.minidb.database import Database
from repro.minidb.sql.parser import parse_sql

QUERY = (
    "SELECT x, y, count(*) AS c, sum(v) AS s, avg(v) AS a "
    "FROM t GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.8{workers} ORDER BY x, y"
)


def _make_db(**kwargs) -> Database:
    db = Database(**kwargs)
    db.create_table("t", [("x", "FLOAT"), ("y", "FLOAT"), ("v", "FLOAT")])
    rng = random.Random(42)
    db.insert_rows(
        "t",
        [
            (rng.uniform(0, 15), rng.uniform(0, 15), rng.uniform(0, 1))
            for _ in range(400)
        ],
    )
    return db


class TestParsing:
    def test_workers_clause_is_parsed(self):
        stmt = parse_sql(
            "SELECT count(*) FROM t GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.5 WORKERS 4"
        )
        assert stmt.group_by.sgb.workers is not None

    def test_workers_clause_is_optional(self):
        stmt = parse_sql(
            "SELECT count(*) FROM t GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.5"
        )
        assert stmt.group_by.sgb.workers is None

    def test_workers_after_on_overlap(self):
        stmt = parse_sql(
            "SELECT count(*) FROM t GROUP BY x, y "
            "DISTANCE-TO-ALL LINF WITHIN 0.5 ON-OVERLAP ELIMINATE WORKERS 2"
        )
        sgb = stmt.group_by.sgb
        assert sgb.on_overlap == "ELIMINATE"
        assert sgb.workers is not None


class TestPlanning:
    def test_explain_shows_workers(self):
        db = _make_db()
        plan = db.explain(
            "SELECT count(*) FROM t GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.8 WORKERS 3"
        )
        assert "WORKERS 3" in plan

    @pytest.mark.parametrize("bad", ["-1", "0.5", "'two'"])
    def test_invalid_workers_rejected(self, bad):
        db = _make_db()
        with pytest.raises(PlanningError):
            db.execute(
                "SELECT count(*) FROM t GROUP BY x, y "
                f"DISTANCE-TO-ANY L2 WITHIN 0.8 WORKERS {bad}"
            )

    def test_workers_zero_means_auto(self):
        # WORKERS 0 = use every core; must still match the serial result.
        db = _make_db()
        serial = db.execute(QUERY.format(workers=""))
        auto = db.execute(QUERY.format(workers=" WORKERS 0"))
        assert auto.rows == serial.rows


class TestExecutionParity:
    def test_parallel_query_matches_serial(self):
        db = _make_db()
        serial = db.execute(QUERY.format(workers=""))
        for w in (2, 4):
            parallel = db.execute(QUERY.format(workers=f" WORKERS {w}"))
            assert parallel.rows == serial.rows

    def test_session_default_workers(self):
        serial = _make_db().execute(QUERY.format(workers=""))
        parallel = _make_db(sgb_workers=2).execute(QUERY.format(workers=""))
        assert parallel.rows == serial.rows

    def test_environment_default_workers(self, monkeypatch):
        monkeypatch.delenv("SGB_WORKERS", raising=False)
        serial = _make_db().execute(QUERY.format(workers=""))
        monkeypatch.setenv("SGB_WORKERS", "2")
        monkeypatch.setenv("SGB_PARALLEL_MIN_POINTS", "32")
        parallel = _make_db().execute(QUERY.format(workers=""))
        assert parallel.rows == serial.rows

    def test_sgb_all_accepts_workers_but_stays_serial(self):
        # SGB-All arbitration is order-dependent; WORKERS parses and the
        # query runs, with results identical to the serial plan.
        sql = (
            "SELECT x, y, count(*) AS c FROM t GROUP BY x, y "
            "DISTANCE-TO-ALL L2 WITHIN 0.8 ON-OVERLAP ELIMINATE{workers} ORDER BY x, y"
        )
        serial = _make_db().execute(sql.format(workers=""))
        parallel = _make_db().execute(sql.format(workers=" WORKERS 2"))
        assert parallel.rows == serial.rows
