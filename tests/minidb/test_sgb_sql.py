"""End-to-end tests of the similarity group-by SQL syntax."""

import pytest

from repro.exceptions import ExecutionError, PlanningError
from repro.minidb import Database


@pytest.fixture
def gps_db():
    """The Figure 2 point layout exposed as a GPSPoints table."""
    db = Database()
    db.execute("CREATE TABLE gpspoints (id INT, lat FLOAT, lon FLOAT)")
    db.execute(
        "INSERT INTO gpspoints VALUES "
        "(1, 2.0, 8.0), (2, 3.0, 7.0), (3, 7.0, 5.0), (4, 8.0, 4.0), (5, 5.0, 6.5)"
    )
    return db


@pytest.fixture
def cluster_db():
    """Three clusters of 2-d points with ids 1..9."""
    db = Database()
    db.execute("CREATE TABLE pts (id INT, x FLOAT, y FLOAT)")
    db.execute(
        "INSERT INTO pts VALUES "
        "(1, 0.0, 0.0), (2, 0.2, 0.1), (3, 0.1, 0.2), "
        "(4, 5.0, 5.0), (5, 5.1, 5.2), (6, 4.9, 5.1), "
        "(7, 9.0, 0.0), (8, 9.1, 0.1), (9, 9.2, 0.2)"
    )
    return db


class TestSGBAllSql:
    def test_join_any_counts(self, gps_db):
        result = gps_db.execute(
            "SELECT count(*) FROM gpspoints "
            "GROUP BY lat, lon DISTANCE-TO-ALL LINF WITHIN 3 ON-OVERLAP JOIN-ANY"
        )
        assert sorted((r[0] for r in result.rows), reverse=True) == [3, 2]

    def test_eliminate_counts(self, gps_db):
        result = gps_db.execute(
            "SELECT count(*) FROM gpspoints "
            "GROUP BY lat, lon DISTANCE-TO-ALL LINF WITHIN 3 ON-OVERLAP ELIMINATE"
        )
        assert sorted(r[0] for r in result.rows) == [2, 2]

    def test_form_new_group_counts(self, gps_db):
        result = gps_db.execute(
            "SELECT count(*) FROM gpspoints "
            "GROUP BY lat, lon DISTANCE-TO-ALL LINF WITHIN 3 ON-OVERLAP FORM-NEW-GROUP"
        )
        assert sorted(r[0] for r in result.rows) == [1, 2, 2]

    def test_default_overlap_is_join_any(self, gps_db):
        result = gps_db.execute(
            "SELECT count(*) FROM gpspoints GROUP BY lat, lon DISTANCE-TO-ALL LINF WITHIN 3"
        )
        assert sorted((r[0] for r in result.rows), reverse=True) == [3, 2]

    def test_three_clusters(self, cluster_db):
        result = cluster_db.execute(
            "SELECT count(*), array_agg(id) FROM pts "
            "GROUP BY x, y DISTANCE-TO-ALL L2 WITHIN 1 ON-OVERLAP JOIN-ANY"
        )
        assert sorted(r[0] for r in result.rows) == [3, 3, 3]
        member_sets = sorted(tuple(sorted(r[1])) for r in result.rows)
        assert member_sets == [(1, 2, 3), (4, 5, 6), (7, 8, 9)]

    def test_centroid_key_columns_exposed(self, cluster_db):
        result = cluster_db.execute(
            "SELECT x, y, count(*) FROM pts "
            "GROUP BY x, y DISTANCE-TO-ALL L2 WITHIN 1 ON-OVERLAP JOIN-ANY"
        )
        centroids = sorted((round(r[0], 2), round(r[1], 2)) for r in result.rows)
        assert centroids == [(0.1, 0.1), (5.0, 5.1), (9.1, 0.1)]

    def test_aggregates_computed_per_group(self, cluster_db):
        result = cluster_db.execute(
            "SELECT count(*), min(id), max(id), sum(x) FROM pts "
            "GROUP BY x, y DISTANCE-TO-ALL L2 WITHIN 1 ON-OVERLAP JOIN-ANY"
        )
        by_min_id = {r[1]: r for r in result.rows}
        assert by_min_id[1][2] == 3 and by_min_id[1][3] == pytest.approx(0.3)
        assert by_min_id[7][3] == pytest.approx(27.3)

    def test_st_polygon_aggregate(self, cluster_db):
        result = cluster_db.execute(
            "SELECT st_polygon(x, y) FROM pts "
            "GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1"
        )
        assert len(result.rows) == 3
        # Two of the clusters are triangles; the third is collinear (a segment).
        assert all(r[0].vertex_count >= 2 for r in result.rows)
        assert sum(1 for r in result.rows if r[0].vertex_count == 3) == 2

    def test_strategy_override_per_statement(self, cluster_db):
        for strategy in ("all-pairs", "bounds-checking", "index"):
            result = cluster_db.execute(
                "SELECT count(*) FROM pts "
                "GROUP BY x, y DISTANCE-TO-ALL L2 WITHIN 1 ON-OVERLAP ELIMINATE",
                sgb_strategy=strategy,
            )
            assert sorted(r[0] for r in result.rows) == [3, 3, 3]

    def test_where_filter_applies_before_grouping(self, cluster_db):
        result = cluster_db.execute(
            "SELECT count(*) FROM pts WHERE id <= 6 "
            "GROUP BY x, y DISTANCE-TO-ALL L2 WITHIN 1 ON-OVERLAP JOIN-ANY"
        )
        assert sorted(r[0] for r in result.rows) == [3, 3]

    def test_having_on_sgb_groups(self, cluster_db):
        cluster_db.execute("INSERT INTO pts VALUES (10, 20.0, 20.0)")
        result = cluster_db.execute(
            "SELECT count(*) FROM pts "
            "GROUP BY x, y DISTANCE-TO-ALL L2 WITHIN 1 ON-OVERLAP JOIN-ANY "
            "HAVING count(*) > 1"
        )
        assert sorted(r[0] for r in result.rows) == [3, 3, 3]

    def test_null_grouping_attribute_rejected(self):
        db = Database()
        db.execute("CREATE TABLE t (x FLOAT, y FLOAT)")
        db.execute("INSERT INTO t VALUES (1.0, NULL)")
        with pytest.raises(ExecutionError):
            db.execute("SELECT count(*) FROM t GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1")

    def test_non_numeric_grouping_attribute_rejected(self):
        db = Database()
        db.execute("CREATE TABLE t (name TEXT, y FLOAT)")
        db.execute("INSERT INTO t VALUES ('a', 1.0)")
        with pytest.raises(ExecutionError):
            db.execute(
                "SELECT count(*) FROM t GROUP BY name, y DISTANCE-TO-ANY L2 WITHIN 1"
            )

    def test_non_constant_eps_rejected(self, cluster_db):
        with pytest.raises(PlanningError):
            cluster_db.execute(
                "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN x"
            )

    def test_negative_eps_rejected(self, cluster_db):
        with pytest.raises(PlanningError):
            cluster_db.execute(
                "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN -1"
            )


class TestSGBAnySql:
    def test_merges_bridged_clusters(self, gps_db):
        result = gps_db.execute(
            "SELECT count(*) FROM gpspoints GROUP BY lat, lon DISTANCE-TO-ANY L2 WITHIN 3"
        )
        assert [r[0] for r in result.rows] == [5]

    def test_three_separate_clusters(self, cluster_db):
        result = cluster_db.execute(
            "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1"
        )
        assert sorted(r[0] for r in result.rows) == [3, 3, 3]

    def test_small_eps_gives_singletons(self, cluster_db):
        result = cluster_db.execute(
            "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.01"
        )
        assert [r[0] for r in result.rows] == [1] * 9

    def test_linf_metric(self, cluster_db):
        result = cluster_db.execute(
            "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY LINF WITHIN 0.2"
        )
        assert sorted(r[0] for r in result.rows) == [3, 3, 3]

    def test_explain_shows_sgb_operator(self, cluster_db):
        plan = cluster_db.explain(
            "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1"
        )
        assert "SGBAggregate" in plan and "DISTANCE-TO-ANY" in plan

    def test_paper_table2_using_syntax(self, cluster_db):
        result = cluster_db.execute(
            "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-ANY WITHIN 1 USING ltwo"
        )
        assert sorted(r[0] for r in result.rows) == [3, 3, 3]

    def test_one_dimensional_grouping_attribute(self, cluster_db):
        result = cluster_db.execute(
            "SELECT count(*) FROM pts GROUP BY x DISTANCE-TO-ANY L2 WITHIN 1"
        )
        assert sorted(r[0] for r in result.rows) == [3, 3, 3]

    def test_session_level_strategy_setting(self):
        db = Database(sgb_strategy="all-pairs")
        db.execute("CREATE TABLE t (x FLOAT, y FLOAT)")
        db.execute("INSERT INTO t VALUES (0, 0), (0.1, 0.1), (9, 9)")
        result = db.execute("SELECT count(*) FROM t GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1")
        assert sorted(r[0] for r in result.rows) == [1, 2]
