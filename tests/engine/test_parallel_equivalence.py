"""Randomized equivalence: parallel shards == serial batch == scalar.

The acceptance bar of the sharded engine: for any input, worker count, and
shard count, the parallel group assignments are identical — same canonical
``GroupingResult`` — to the serial batch pipeline and to the scalar
point-at-a-time reference path.  Covers dims 2–4, duplicate points, clusters
deliberately straddling shard boundaries, both metrics, and both PointSet
backends; worker counts 2 and 4 exercise the real process pool.
"""

from __future__ import annotations

import random

import pytest

from repro.core.api import sgb_any
from repro.core.pointset import HAVE_NUMPY, PointSet
from repro.core.sgb_any import sgb_any_grouping
from repro.engine import sgb_any_sharded

BACKENDS = ["python"] + (["numpy"] if HAVE_NUMPY else [])
WORKER_COUNTS = [1, 2, 4]


def _clustered(n, seed, dims=2, duplicate_fraction=0.0):
    rng = random.Random(seed)
    centers = [tuple(rng.uniform(0, 25) for _ in range(dims)) for _ in range(7)]
    pts = []
    for _ in range(n):
        if rng.random() < 0.8:
            c = rng.choice(centers)
            pts.append(tuple(x + rng.uniform(-0.7, 0.7) for x in c))
        else:
            pts.append(tuple(rng.uniform(0, 25) for _ in range(dims)))
    duplicates = int(n * duplicate_fraction)
    for _ in range(duplicates):
        pts.append(pts[rng.randrange(len(pts))])
    rng.shuffle(pts)
    return pts


def _key(result):
    return (result.groups, result.eliminated, result.points)


class TestParallelEquivalence:
    @pytest.mark.parametrize("dims", [2, 3, 4])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_workers_match_serial_and_scalar(self, dims, seed):
        pts = _clustered(300, seed=seed, dims=dims)
        scalar = sgb_any_grouping(pts, eps=0.9, batch=False)
        serial = sgb_any_grouping(pts, eps=0.9, batch=True)
        assert _key(serial) == _key(scalar)
        for workers in WORKER_COUNTS:
            parallel = sgb_any_sharded(pts, eps=0.9, workers=workers, shards=4)
            assert _key(parallel) == _key(scalar), f"workers={workers}, dims={dims}"

    @pytest.mark.parametrize("metric", ["L2", "LINF"])
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_metrics_and_backends(self, metric, backend):
        ps = PointSet.from_any(_clustered(250, seed=9), backend=backend)
        scalar = sgb_any_grouping(ps, eps=1.1, metric=metric, batch=False)
        for workers in (1, 2):
            parallel = sgb_any_sharded(ps, eps=1.1, metric=metric, workers=workers, shards=3)
            assert _key(parallel) == _key(scalar)

    @pytest.mark.parametrize("seed", [3, 4])
    def test_duplicate_points(self, seed):
        pts = _clustered(200, seed=seed, duplicate_fraction=0.3)
        scalar = sgb_any_grouping(pts, eps=0.8, batch=False)
        for workers in WORKER_COUNTS:
            parallel = sgb_any_sharded(pts, eps=0.8, workers=workers, shards=3)
            assert _key(parallel) == _key(scalar)

    def test_boundary_straddling_chain_stays_one_group(self):
        # A chain spaced at 0.9 * eps spanning the whole extent: every cut
        # severs it spatially, and only the halo-band merge can reconnect it.
        eps = 1.0
        pts = [(0.9 * i, 0.0) for i in range(120)]
        rng = random.Random(13)
        rng.shuffle(pts)
        scalar = sgb_any_grouping(pts, eps=eps, batch=False)
        assert len(scalar.groups) == 1
        for workers in WORKER_COUNTS:
            for shards in (2, 3, 4, 8):
                parallel = sgb_any_sharded(pts, eps=eps, workers=workers, shards=shards)
                assert _key(parallel) == _key(scalar), (workers, shards)

    def test_boundary_straddling_clusters(self):
        # Tight clusters centred exactly on eps-grid lines, so shard cuts run
        # through the middle of a cluster whenever one lands on the boundary.
        eps = 0.5
        rng = random.Random(21)
        pts = []
        for c in range(10):
            center = (c * 3.0, 0.0)  # multiples of eps
            for _ in range(30):
                pts.append(
                    (
                        center[0] + rng.uniform(-0.2, 0.2),
                        center[1] + rng.uniform(-0.2, 0.2),
                    )
                )
        rng.shuffle(pts)
        scalar = sgb_any_grouping(pts, eps=eps, batch=False)
        for workers in WORKER_COUNTS:
            parallel = sgb_any_sharded(pts, eps=eps, workers=workers, shards=4)
            assert _key(parallel) == _key(scalar)


class TestApiIntegration:
    def test_api_workers_parameter(self):
        pts = _clustered(400, seed=6)
        baseline = sgb_any(pts, eps=0.9)
        for workers in (2, "auto"):
            assert _key(sgb_any(pts, eps=0.9, workers=workers)) == _key(baseline)

    def test_environment_default_routes_through_engine(self, monkeypatch):
        monkeypatch.setenv("SGB_WORKERS", "2")
        monkeypatch.setenv("SGB_PARALLEL_MIN_POINTS", "32")
        pts = _clustered(300, seed=8)
        monkeypatch.delenv("SGB_WORKERS", raising=False)
        baseline = sgb_any(pts, eps=0.9)
        monkeypatch.setenv("SGB_WORKERS", "2")
        assert _key(sgb_any(pts, eps=0.9)) == _key(baseline)

    def test_explicit_index_factory_pins_serial_path(self):
        from repro.spatial.rtree import RTree

        pts = _clustered(200, seed=12)
        baseline = sgb_any(pts, eps=0.9)
        with_index = sgb_any(
            pts, eps=0.9, workers=2, index_factory=lambda: RTree(max_entries=8)
        )
        assert _key(with_index) == _key(baseline)

    def test_empty_and_tiny_inputs(self):
        assert sgb_any_sharded([], eps=0.5, workers=2).groups == []
        single = sgb_any_sharded([(1.0, 1.0)], eps=0.5, workers=4)
        assert single.groups == [[0]]
