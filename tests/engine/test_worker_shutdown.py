"""Worker-pool lifecycle: explicit shutdown is reusable, atexit is terminal."""

from __future__ import annotations

from repro.engine import workers as W


class TestExplicitShutdown:
    def test_shutdown_then_reuse_builds_a_fresh_pool(self):
        pool = W.get_worker_pool(2)
        if pool is None:  # single-core machine: nothing to shut down
            return
        W.shutdown_worker_pools()
        again = W.get_worker_pool(2)
        assert again is not None
        assert again is not pool
        W.shutdown_worker_pools()


class TestInterpreterExit:
    def test_atexit_flag_degrades_to_serial(self, monkeypatch):
        """After the atexit hook ran, pool requests return None (serial path)

        instead of racing ProcessPoolExecutor against interpreter teardown —
        the scenario a Database.close() inside someone's atexit hook hits.
        """
        W.begin_shutdown()
        try:
            assert W.get_worker_pool(2) is None
            assert W.get_worker_pool(8) is None
        finally:
            W._SHUTTING_DOWN = False

    def test_sharded_sgb_falls_back_to_serial_during_shutdown(self):
        from repro.core.api import sgb_any

        points = [(0.0, 0.0), (0.1, 0.1), (5.0, 5.0), (5.1, 5.1)]
        serial = sgb_any(points, eps=1.0)
        W.begin_shutdown()
        try:
            during = sgb_any(points, eps=1.0, workers=2)
        finally:
            W._SHUTTING_DOWN = False
        assert during.groups == serial.groups
        assert during.eliminated == serial.eliminated
