"""Planner statistics: degenerate inputs, selectivity, skew, and caching."""

from __future__ import annotations

import random

import pytest

from repro.core.pointset import PointSet
from repro.engine.stats import (
    STATS_BINS,
    PointStats,
    collect_stats,
    stats_from_columns,
    synthetic_stats,
)


def _uniform(n, seed=0, dims=2):
    rng = random.Random(seed)
    return [tuple(rng.random() for _ in range(dims)) for _ in range(n)]


class TestDegenerateInputs:
    def test_empty_batch(self):
        stats = stats_from_columns([[], []])
        assert stats.count == 0
        assert stats.pair_fraction(0.5) == 0.0
        assert stats.estimated_pairs(0.5) == 0.0
        assert stats.estimated_groups(0.5) == 0
        assert stats.axis_imbalance() == 1.0
        assert stats.slab_loads(4) == [0]

    def test_empty_pointset(self):
        stats = collect_stats(PointSet.from_any([]))
        assert stats.count == 0 and stats.histograms == ()

    def test_single_point(self):
        stats = collect_stats(PointSet.from_any([(3.0, 4.0)]))
        assert stats.count == 1
        assert stats.low == (3.0, 4.0) and stats.high == (3.0, 4.0)
        # Zero-width axes: the whole population sits in bin 0 and every pair
        # (there are none) trivially agrees.
        assert stats.histograms[0][0] == 1
        assert stats.pair_fraction(0.1) == 1.0
        assert stats.estimated_pairs(0.1) == 0.0
        assert stats.axis_imbalance() == 1.0

    def test_duplicate_heavy_batch(self):
        stats = collect_stats(PointSet.from_any([(1.0, 2.0)] * 50))
        assert stats.count == 50
        assert stats.extent(0) == 0.0 and stats.extent(1) == 0.0
        assert stats.pair_fraction(0.01) == 1.0
        assert stats.estimated_pairs(0.01) == pytest.approx(50 * 49 / 2)
        assert stats.estimated_groups(0.01) == 1
        assert stats.slab_loads(4) == [50]

    def test_zero_width_single_axis(self):
        # x varies, y is constant: y contributes fraction 1.0, x decides.
        pts = [(float(i), 5.0) for i in range(100)]
        stats = collect_stats(PointSet.from_any(pts))
        assert stats.extent(1) == 0.0
        assert stats.axis_pair_fraction(1, 0.5) == 1.0
        assert 0.0 < stats.pair_fraction(0.5) < 1.0

    def test_no_zero_division_anywhere(self):
        for pts in ([], [(0.0,)], [(2.0, 2.0)] * 3, [(0.0, 0.0), (0.0, 0.0)]):
            stats = collect_stats(PointSet.from_any(pts)) if pts else stats_from_columns([])
            stats.pair_fraction(0.1)
            stats.estimated_groups(0.1)
            stats.axis_imbalance()
            stats.slab_loads(8)
            stats.widest_axis() if stats.dims else None


class TestSelectivity:
    def test_histogram_shape(self):
        stats = collect_stats(PointSet.from_any(_uniform(1000)))
        assert stats.dims == 2
        assert len(stats.histograms) == 2
        assert all(len(h) == STATS_BINS for h in stats.histograms)
        assert sum(stats.histograms[0]) == 1000

    def test_pair_fraction_tracks_eps(self):
        stats = collect_stats(PointSet.from_any(_uniform(2000)))
        small = stats.pair_fraction(0.01)
        large = stats.pair_fraction(0.3)
        assert 0.0 <= small < large <= 1.0

    def test_pair_fraction_upper_bounds_truth(self):
        # The independence-product estimate must never underestimate the
        # box-metric pair count (that is the bias the cost model relies on).
        pts = _uniform(400, seed=3)
        stats = collect_stats(PointSet.from_any(pts))
        eps = 0.1
        truth = sum(
            1
            for i in range(len(pts))
            for j in range(i + 1, len(pts))
            if max(abs(pts[i][0] - pts[j][0]), abs(pts[i][1] - pts[j][1])) <= eps
        )
        assert stats.estimated_pairs(eps) >= truth * 0.9

    def test_cross_pair_fraction_disjoint(self):
        left = collect_stats(PointSet.from_any(_uniform(200, seed=1)))
        far = [(x + 100.0, y + 100.0) for x, y in _uniform(200, seed=2)]
        right = collect_stats(PointSet.from_any(far))
        assert left.estimated_join_pairs(right, 0.1) == 0.0

    def test_cross_pair_fraction_identical(self):
        pts = _uniform(300, seed=4)
        a = collect_stats(PointSet.from_any(pts))
        b = collect_stats(PointSet.from_any(list(pts)))
        assert a.estimated_join_pairs(b, 0.2) > 0.0

    def test_cross_pair_degenerate_both_flat(self):
        a = collect_stats(PointSet.from_any([(1.0, 1.0)] * 5))
        b = collect_stats(PointSet.from_any([(1.05, 1.0)] * 7))
        assert a.cross_pair_fraction(b, 0, eps=0.1) == 1.0
        assert a.cross_pair_fraction(b, 0, eps=0.01) == 0.0


class TestSkew:
    def test_uniform_is_balanced(self):
        stats = collect_stats(PointSet.from_any(_uniform(5000)))
        assert stats.axis_imbalance() < 1.5

    def test_hot_cluster_is_skewed(self):
        rng = random.Random(7)
        pts = [(rng.gauss(0.5, 0.005), rng.random()) for _ in range(4000)]
        pts += [(rng.random() * 10.0, rng.random()) for _ in range(1000)]
        stats = collect_stats(PointSet.from_any(pts))
        assert stats.axis_imbalance(0) > 3.0

    def test_slab_loads_partition_the_count(self):
        stats = collect_stats(PointSet.from_any(_uniform(1000)))
        loads = stats.slab_loads(8)
        assert sum(loads) == 1000
        assert all(load > 0 for load in loads)
        assert len(loads) <= 8


class TestCollection:
    def test_cached_on_pointset(self):
        ps = PointSet.from_any(_uniform(100))
        assert collect_stats(ps) is collect_stats(ps)

    def test_backends_agree(self):
        pts = _uniform(500, seed=9)
        fast = collect_stats(PointSet.from_any(pts))
        slow = collect_stats(PointSet.from_any(pts, backend="python"))
        assert fast.count == slow.count
        assert fast.low == pytest.approx(slow.low)
        assert fast.high == pytest.approx(slow.high)
        assert fast.histograms == slow.histograms

    def test_synthetic_stats_uniform(self):
        stats = synthetic_stats(640, dims=3)
        assert stats.count == 640 and stats.dims == 3
        assert sum(stats.histograms[0]) == 640
        assert stats.axis_imbalance() == 1.0

    def test_synthetic_stats_empty(self):
        assert synthetic_stats(0).count == 0
        assert synthetic_stats(-5).count == 0

    def test_frozen(self):
        stats = synthetic_stats(10)
        with pytest.raises(AttributeError):
            stats.count = 11  # type: ignore[misc]

    def test_is_dataclass_summary(self):
        stats = collect_stats(PointSet.from_any(_uniform(10)))
        assert isinstance(stats, PointStats)
