"""Planner decision regression suite and the worker-clamp contract.

Pins the cost planner's mode choice for the canonical scenarios: tiny
batches stay serial, large uniform batches shard one slab per worker,
skewed batches over-decompose (fan-out > workers), SGB-All never shards,
and join→SGB pipelines report a positive fusion gain.  All scenarios pin
``cpu_count`` and the uncalibrated default profile so they are
machine-independent.
"""

from __future__ import annotations

import random
import warnings

import pytest

from repro.core.pointset import PointSet
from repro.engine.calibrate import DEFAULT_PROFILE
from repro.engine.cost import (
    fused_join_group_gain,
    plan_eps_join,
    plan_knn_join,
    plan_sgb_all,
    plan_sgb_any,
    plan_stream_flush,
    planner_delegated,
)
from repro.engine.planner import ENV_WORKERS, plan_shards, resolve_workers
from repro.engine.stats import collect_stats, synthetic_stats

PROFILE = DEFAULT_PROFILE


def _skewed_stats(count=60_000, hot_fraction=0.7, seed=42):
    """Statistics of a hot-cluster-plus-uniform-background distribution.

    The gaussian cluster spans a few histogram bins, so equal-count cuts at
    one-slab-per-worker are capped by the hot bins while a finer fan-out can
    still split the cluster — exactly the shape that rewards F > W.
    """
    rng = random.Random(seed)
    hot = int(count * hot_fraction)
    pts = [(rng.gauss(5.0, 0.3), rng.random()) for _ in range(hot)]
    pts += [(rng.random() * 10.0, rng.random()) for _ in range(count - hot)]
    return collect_stats(PointSet.from_any(pts))


class TestDelegation:
    def test_no_workers_and_no_env_delegates(self, monkeypatch):
        monkeypatch.delenv(ENV_WORKERS, raising=False)
        assert planner_delegated(None)

    def test_auto_and_zero_delegate(self):
        assert planner_delegated("auto")
        assert planner_delegated(" AUTO ")
        assert planner_delegated(0)

    def test_numeric_argument_is_forced(self):
        assert not planner_delegated(1)
        assert not planner_delegated(4)
        assert not planner_delegated("3")

    def test_numeric_environment_is_forced(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "2")
        assert not planner_delegated(None)

    def test_auto_environment_delegates(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "auto")
        assert planner_delegated(None)
        monkeypatch.setenv(ENV_WORKERS, "0")
        assert planner_delegated(None)


class TestSGBAnyDecisions:
    def test_tiny_batch_stays_scalar(self):
        plan = plan_sgb_any(synthetic_stats(10), 0.1, cpu_count=8, profile=PROFILE)
        assert plan.mode == "scalar" and not plan.parallel

    def test_small_batch_stays_serial_batch(self):
        plan = plan_sgb_any(synthetic_stats(500), 0.1, cpu_count=8, profile=PROFILE)
        assert plan.mode == "batch" and not plan.parallel

    def test_single_core_never_shards(self):
        plan = plan_sgb_any(
            synthetic_stats(500_000), 0.004, cpu_count=1, profile=PROFILE
        )
        assert plan.mode == "batch" and not plan.parallel

    def test_large_uniform_shards_one_slab_per_worker(self):
        plan = plan_sgb_any(
            synthetic_stats(500_000), 0.004, cpu_count=8, profile=PROFILE
        )
        assert plan.mode == "sharded"
        assert plan.workers == 8
        assert plan.shards == 8

    def test_skewed_batch_over_decomposes(self):
        stats = _skewed_stats()
        assert stats.axis_imbalance(0) > 1.5
        plan = plan_sgb_any(stats, 0.02, cpu_count=8, profile=PROFILE)
        assert plan.mode == "sharded"
        assert plan.shards > plan.workers

    def test_details_table_names_every_candidate(self):
        plan = plan_sgb_any(
            synthetic_stats(500_000), 0.004, cpu_count=8, profile=PROFILE
        )
        assert "batch" in plan.details
        assert any(key.startswith("sharded@") for key in plan.details)

    def test_describe_mentions_mode_and_cost(self):
        plan = plan_sgb_any(synthetic_stats(100), 0.1, cpu_count=8, profile=PROFILE)
        text = plan.describe()
        assert "sgb_any" in text and "mode=" in text and "est_cost=" in text


class TestSGBAllDecisions:
    def test_never_sharded(self):
        for count in (10, 1000, 500_000):
            plan = plan_sgb_all(
                synthetic_stats(count), 0.004, cpu_count=16, profile=PROFILE
            )
            assert plan.workers == 1 and plan.shards == 1
            assert plan.mode in ("scalar", "frontier")

    def test_tiny_scalar_large_frontier(self):
        assert plan_sgb_all(synthetic_stats(8), 0.1, profile=PROFILE).mode == "scalar"
        assert (
            plan_sgb_all(synthetic_stats(10_000), 0.1, profile=PROFILE).mode
            == "frontier"
        )


class TestJoinDecisions:
    def test_tiny_join_prefers_allpairs(self):
        plan = plan_eps_join(
            synthetic_stats(20), synthetic_stats(20), 0.5, cpu_count=8, profile=PROFILE
        )
        assert plan.mode == "allpairs"

    def test_selective_join_prefers_grid(self):
        plan = plan_eps_join(
            synthetic_stats(5000),
            synthetic_stats(5000),
            0.001,
            cpu_count=1,
            profile=PROFILE,
        )
        assert plan.mode == "grid"

    def test_huge_selective_join_shards(self):
        plan = plan_eps_join(
            synthetic_stats(400_000),
            synthetic_stats(400_000),
            0.01,
            cpu_count=8,
            profile=PROFILE,
        )
        assert plan.mode == "sharded" and plan.workers == 8

    def test_knn_small_serial_large_sharded(self):
        small = plan_knn_join(
            synthetic_stats(100), synthetic_stats(100), 4, cpu_count=8, profile=PROFILE
        )
        assert small.mode == "serial"
        large = plan_knn_join(
            synthetic_stats(2_000_000),
            synthetic_stats(2_000_000),
            4,
            cpu_count=8,
            profile=PROFILE,
        )
        assert large.mode == "sharded"

    def test_join_estimates_track_histogram_overlap(self):
        rng = random.Random(0)
        near = collect_stats(
            PointSet.from_any([(rng.random(), rng.random()) for _ in range(500)])
        )
        far = collect_stats(
            PointSet.from_any(
                [(rng.random() + 50.0, rng.random()) for _ in range(500)]
            )
        )
        overlapping = plan_eps_join(near, near, 0.05, cpu_count=1, profile=PROFILE)
        disjoint = plan_eps_join(near, far, 0.05, cpu_count=1, profile=PROFILE)
        assert overlapping.est_rows > disjoint.est_rows == 0

    def test_fused_gain_positive_iff_join_produces_pairs(self):
        rng = random.Random(1)
        stats = collect_stats(
            PointSet.from_any([(rng.random(), rng.random()) for _ in range(500)])
        )
        far = collect_stats(
            PointSet.from_any([(rng.random() + 90.0, 0.0) for _ in range(500)])
        )
        assert fused_join_group_gain(stats, stats, 0.1, profile=PROFILE) > 0.0
        assert fused_join_group_gain(stats, far, 0.1, profile=PROFILE) == 0.0


class TestStreamDecisions:
    def test_small_window_stays_incremental(self):
        plan = plan_stream_flush(256, 0.05, cpu_count=8, profile=PROFILE)
        assert plan.mode == "incremental"

    def test_single_core_stays_incremental(self):
        plan = plan_stream_flush(1_000_000, 0.001, cpu_count=1, profile=PROFILE)
        assert plan.mode == "incremental"


class TestWorkerClamp:
    """Satellite: numeric worker requests above capacity clamp with a warning."""

    def test_argument_clamped_with_warning(self):
        with pytest.warns(RuntimeWarning, match="clamping the pool"):
            assert resolve_workers(16, cpu_count=2) == 2

    def test_environment_clamped_with_warning(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "16")
        monkeypatch.setattr("repro.engine.planner.os.cpu_count", lambda: 2)
        with pytest.warns(RuntimeWarning, match="clamping the pool"):
            assert resolve_workers(None) == 2

    def test_plan_shards_numeric_path_clamped(self):
        with pytest.warns(RuntimeWarning, match="clamping the pool"):
            plan = plan_shards(100_000, eps=0.5, workers=64, cpu_count=4)
        assert plan.workers == 4

    def test_within_capacity_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_workers(4, cpu_count=8) == 4

    def test_cap_never_below_two(self):
        # The forced-parallel CI lane (SGB_WORKERS=2) must keep a real pool
        # even on one-core machines.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_workers(2, cpu_count=1) == 2
