"""Unit tests for the sharded SGB engine: partitioner, planner, merge stage.

The load-bearing invariant is the halo-band completeness check: every
within-eps pair that crosses a shard boundary must land with *both* endpoints
inside the halo band of that boundary, because those bands are the only place
cross-shard edges are ever discovered.
"""

from __future__ import annotations

import random

import pytest

from repro.core.pointset import HAVE_NUMPY, PointSet
from repro.dstruct.union_find import UnionFind
from repro.engine.merge import canonical_groups, merge_shard_forests
from repro.engine.partition import partition_pointset
from repro.engine.planner import (
    ENV_MIN_POINTS,
    ENV_WORKERS,
    plan_shards,
    resolve_workers,
)
from repro.exceptions import InvalidParameterError

BACKENDS = ["python"] + (["numpy"] if HAVE_NUMPY else [])


def _clustered(n, seed, dims=2):
    rng = random.Random(seed)
    centers = [tuple(rng.uniform(0, 30) for _ in range(dims)) for _ in range(8)]
    pts = []
    for _ in range(n):
        if rng.random() < 0.8:
            c = rng.choice(centers)
            pts.append(tuple(x + rng.uniform(-0.8, 0.8) for x in c))
        else:
            pts.append(tuple(rng.uniform(0, 30) for _ in range(dims)))
    return pts


class TestPartitioner:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("dims", [2, 3])
    def test_shards_partition_the_input(self, backend, dims):
        ps = PointSet.from_any(_clustered(400, seed=3, dims=dims), backend=backend)
        part = partition_pointset(ps, eps=0.9, n_shards=4)
        assert part is not None
        all_indices = sorted(i for shard in part.shards for i in shard.indices)
        assert all_indices == list(range(len(ps)))
        assert part.n_points == len(ps)
        for shard in part.shards:
            assert len(shard.points) == len(shard.indices)

    def test_cuts_keep_minimum_slab_width(self):
        ps = PointSet.from_any(_clustered(500, seed=5))
        part = partition_pointset(ps, eps=0.5, n_shards=6)
        assert part is not None
        cuts = part.cut_cells
        assert all(b - a >= 2 for a, b in zip(cuts, cuts[1:]))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_halo_bands_cover_every_cross_shard_edge(self, backend):
        eps = 0.9
        ps = PointSet.from_any(_clustered(350, seed=7), backend=backend)
        part = partition_pointset(ps, eps=eps, n_shards=3)
        assert part is not None
        shard_of = {}
        for shard in part.shards:
            for i in shard.indices:
                shard_of[i] = shard.sid
        band_sets = [set(band.indices) for band in part.bands]
        for i, j in ps.pairwise_within(eps):
            if shard_of[i] == shard_of[j]:
                continue
            assert abs(shard_of[i] - shard_of[j]) == 1
            assert any(i in band and j in band for band in band_sets), (
                f"cross-shard edge ({i}, {j}) missed by every halo band"
            )

    def test_band_membership_matches_flanking_cells(self):
        import math

        eps = 0.7
        ps = PointSet.from_any(_clustered(300, seed=11))
        part = partition_pointset(ps, eps=eps, n_shards=3)
        assert part is not None
        axis = part.axis
        for band in part.bands:
            expected = {
                i
                for i in range(len(ps))
                if math.floor(ps.point(i)[axis] / eps) in (band.cut_cell - 1, band.cut_cell)
            }
            assert set(band.indices) == expected

    def test_degenerate_inputs_fall_back_to_serial(self):
        assert partition_pointset(PointSet.from_any([(1.0, 2.0)]), 0.5, 4) is None
        same = PointSet.from_any([(3.0, 3.0)] * 50)
        assert partition_pointset(same, 0.5, 4) is None
        ps = PointSet.from_any(_clustered(100, seed=1))
        assert partition_pointset(ps, 0.5, 1) is None

    def test_invalid_parameters_raise(self):
        ps = PointSet.from_any(_clustered(50, seed=2))
        with pytest.raises(InvalidParameterError):
            partition_pointset(ps, eps=0.0, n_shards=2)
        with pytest.raises(InvalidParameterError):
            partition_pointset(ps, eps=0.5, n_shards=2, axis=5)

    def test_explicit_axis_is_honoured(self):
        ps = PointSet.from_any(_clustered(300, seed=4, dims=3))
        part = partition_pointset(ps, eps=0.9, n_shards=2, axis=1)
        assert part is not None
        assert part.axis == 1


class TestPlanner:
    def test_explicit_workers_win_over_environment(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "8")
        assert resolve_workers(3, cpu_count=8) == 3
        assert resolve_workers(None, cpu_count=8) == 8

    def test_environment_default_and_serial_fallback(self, monkeypatch):
        monkeypatch.delenv(ENV_WORKERS, raising=False)
        assert resolve_workers(None) == 1
        monkeypatch.setenv(ENV_WORKERS, "")
        assert resolve_workers(None) == 1

    def test_auto_uses_cpu_count(self):
        import os

        assert resolve_workers("auto") == (os.cpu_count() or 1)
        assert resolve_workers(0) == (os.cpu_count() or 1)

    def test_invalid_workers_raise(self, monkeypatch):
        with pytest.raises(InvalidParameterError):
            resolve_workers("three")
        with pytest.raises(InvalidParameterError):
            resolve_workers(-2)
        monkeypatch.setenv(ENV_WORKERS, "not-a-number")
        with pytest.raises(InvalidParameterError):
            resolve_workers(None)

    def test_small_payloads_stay_serial(self, monkeypatch):
        monkeypatch.delenv(ENV_MIN_POINTS, raising=False)
        plan = plan_shards(10, eps=0.5, workers=4, cpu_count=8)
        assert not plan.parallel and plan.workers == 1

    def test_min_points_environment_override(self, monkeypatch):
        monkeypatch.setenv(ENV_MIN_POINTS, "5")
        plan = plan_shards(10, eps=0.5, workers=4, cpu_count=8)
        assert plan.parallel

    def test_parallel_plan_shape(self, monkeypatch):
        monkeypatch.delenv(ENV_MIN_POINTS, raising=False)
        plan = plan_shards(10_000, eps=0.5, workers=4, cpu_count=8)
        assert plan.parallel and plan.workers == 4 and plan.shards == 4

    def test_auto_is_capped_by_cpu_count(self):
        plan = plan_shards(10_000, eps=0.5, workers="auto", cpu_count=2)
        assert plan.workers <= 2


class TestMergeStage:
    def test_merge_combines_forests_and_boundary_edges(self):
        # Shard 0 holds rows [0, 1, 2] grouped {0,1}+{2}; shard 1 holds rows
        # [3, 4] grouped {3,4}; the boundary edge (2, 3) bridges the shards.
        uf = merge_shard_forests(
            5,
            [[0, 1, 2], [3, 4]],
            [{0: 0, 1: 0, 2: 2}, {0: 0, 1: 0}],
            [(2, 3)],
        )
        assert uf.connected(0, 1)
        assert uf.connected(2, 3) and uf.connected(2, 4)
        assert not uf.connected(0, 2)
        assert canonical_groups(uf) == [[0, 1], [2, 3, 4]]

    def test_unsharded_rows_survive_as_singletons(self):
        uf = merge_shard_forests(3, [], [], [])
        assert canonical_groups(uf) == [[0], [1], [2]]

    def test_canonical_groups_order(self):
        uf = UnionFind(range(6))
        uf.union(5, 2)
        uf.union(4, 1)
        assert canonical_groups(uf) == [[0], [1, 4], [2, 5], [3]]
