"""Randomized equivalence: every planner-chosen mode is bit-identical to serial.

The cost planner is advisory about *time* only.  This suite generates
randomized workloads (uniform, clustered, skewed, duplicate-heavy) and
asserts that the delegated "auto" path — whatever mode the planner picks,
including modes forced through a monkeypatched planner — produces exactly
the groups/pairs of the serial scalar reference, on both point-set
backends.
"""

from __future__ import annotations

import random

import pytest

from repro.core.pointset import HAVE_NUMPY, PointSet
from repro.engine.cost import PhysicalPlan
from repro.engine.planner import ENV_WORKERS
from repro import sgb_all, sgb_any, sim_join

BACKENDS = ["numpy", "python"] if HAVE_NUMPY else ["python"]


@pytest.fixture(autouse=True)
def _delegated_environment(monkeypatch):
    """Leave the mode choice to the planner, with a hermetic cost profile."""
    monkeypatch.delenv(ENV_WORKERS, raising=False)
    monkeypatch.setenv("SGB_COST_PROFILE", "off")
    from repro.engine.calibrate import reset_profile_cache

    reset_profile_cache()
    yield
    reset_profile_cache()


def _workload(kind: str, n: int, seed: int):
    rng = random.Random(seed)
    if kind == "uniform":
        return [(rng.random(), rng.random()) for _ in range(n)]
    if kind == "clustered":
        centres = [(rng.random() * 10, rng.random() * 10) for _ in range(max(1, n // 40))]
        return [
            (cx + rng.gauss(0, 0.05), cy + rng.gauss(0, 0.05))
            for cx, cy in (rng.choice(centres) for _ in range(n))
        ]
    if kind == "skewed":
        hot = int(n * 0.7)
        pts = [(rng.gauss(5.0, 0.1), rng.random()) for _ in range(hot)]
        pts += [(rng.random() * 10.0, rng.random()) for _ in range(n - hot)]
        return pts
    if kind == "duplicates":
        distinct = [(rng.random(), rng.random()) for _ in range(max(1, n // 10))]
        return [rng.choice(distinct) for _ in range(n)]
    raise AssertionError(kind)


WORKLOADS = ["uniform", "clustered", "skewed", "duplicates"]


class TestSGBAnyEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("kind", WORKLOADS)
    def test_auto_matches_serial(self, backend, kind):
        pts = _workload(kind, 300, seed=hash(kind) % 1000)
        ps = PointSet.from_any(pts, backend=backend)
        reference = sgb_any(ps, eps=0.2, workers=1)
        auto = sgb_any(ps, eps=0.2)
        assert auto.groups == reference.groups
        assert auto.plan is not None

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_forced_sharded_plan_matches_serial(self, backend, monkeypatch):
        # Make the planner pick sharded regardless of size, so the pool path
        # really runs even on small inputs and one-core machines.
        import repro.engine.cost as cost_mod

        def always_sharded(stats, eps, cpu_count=None, profile=None):
            return PhysicalPlan(
                op="sgb_any", mode="sharded", workers=2, shards=4, reason="forced"
            )

        monkeypatch.setattr(cost_mod, "plan_sgb_any", always_sharded)
        for seed in range(3):
            pts = _workload("clustered", 400, seed=seed)
            ps = PointSet.from_any(pts, backend=backend)
            reference = sgb_any(ps, eps=0.15, workers=1)
            auto = sgb_any(ps, eps=0.15)
            assert auto.groups == reference.groups
            assert auto.plan.mode == "sharded"

    def test_eliminated_flag_and_labels_match(self):
        pts = _workload("uniform", 200, seed=5)
        reference = sgb_any(pts, eps=0.1, workers=1)
        auto = sgb_any(pts, eps=0.1)
        assert auto.labels() == reference.labels()
        assert auto.eliminated == reference.eliminated


class TestSGBAllEquivalence:
    @pytest.mark.parametrize("kind", ["uniform", "clustered"])
    def test_auto_matches_forced_modes(self, kind, monkeypatch):
        import repro.engine.cost as cost_mod

        pts = _workload(kind, 150, seed=11)
        baseline = sgb_all(pts, eps=0.2, on_overlap="eliminate")

        for mode in ("scalar", "frontier"):
            def force(stats, eps, cpu_count=None, profile=None, _mode=mode):
                return PhysicalPlan(op="sgb_all", mode=_mode, reason="forced")

            monkeypatch.setattr(cost_mod, "plan_sgb_all", force)
            forced = sgb_all(pts, eps=0.2, on_overlap="eliminate")
            assert forced.groups == baseline.groups
            assert forced.eliminated == baseline.eliminated


class TestJoinEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_eps_join_auto_matches_serial(self, backend):
        left = PointSet.from_any(_workload("uniform", 250, seed=21), backend=backend)
        right = PointSet.from_any(_workload("clustered", 200, seed=22), backend=backend)
        reference = sim_join(left, right, eps=0.15, workers=1)
        auto = sim_join(left, right, eps=0.15)
        assert list(auto) == list(reference)
        assert auto.plan is not None

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_knn_join_auto_matches_serial(self, backend):
        left = PointSet.from_any(_workload("skewed", 150, seed=31), backend=backend)
        right = PointSet.from_any(_workload("uniform", 180, seed=32), backend=backend)
        reference = sim_join(left, right, k=3, workers=1)
        auto = sim_join(left, right, k=3)
        assert list(auto) == list(reference)

    def test_forced_sharded_join_matches_serial(self, monkeypatch):
        import repro.engine.cost as cost_mod

        def always_sharded(left, right, eps, cpu_count=None, profile=None):
            return PhysicalPlan(
                op="eps_join", mode="sharded", workers=2, shards=4, reason="forced"
            )

        monkeypatch.setattr(cost_mod, "plan_eps_join", always_sharded)
        left = _workload("uniform", 300, seed=41)
        right = _workload("uniform", 300, seed=42)
        reference = sim_join(left, right, eps=0.1, workers=1)
        auto = sim_join(left, right, eps=0.1)
        assert list(auto) == list(reference)
        assert auto.plan.mode == "sharded"


class TestSQLEquivalence:
    def test_delegated_sql_matches_forced_serial(self, monkeypatch):
        from repro.minidb.database import Database

        rng = random.Random(7)
        rows = [(rng.random(), rng.random(), i % 5) for i in range(400)]
        sql = (
            "SELECT x, y, COUNT(*) AS n, SUM(v) AS s FROM pts "
            "GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.1"
        )

        def run():
            db = Database()
            db.create_table("pts", [("x", "FLOAT"), ("y", "FLOAT"), ("v", "INT")])
            db.insert_rows("pts", rows)
            return db.execute(sql)

        reference = run().rows

        # Force the executor's delegated plan to sharded; rows must not change.
        import repro.minidb.exec.sgb as sgb_mod

        def always_sharded(stats, eps, cpu_count=None, profile=None):
            return PhysicalPlan(
                op="sgb_any", mode="sharded", workers=2, shards=4, reason="forced"
            )

        monkeypatch.setattr(sgb_mod, "plan_sgb_any", always_sharded)
        forced = run()
        assert forced.rows == reference
        assert forced.plan is not None and forced.plan.mode == "sharded"
