"""Correctness of the tiered result cache: bit-identity, damage, bypass."""

from __future__ import annotations

import os
import pickle
import random

import pytest

from repro.core.api import sgb_all, sgb_any, sim_join
from repro.core.fingerprint import fingerprint_columns, fingerprint_points
from repro.core.pointset import HAVE_NUMPY, PointSet
from repro.storage.cache import (
    ResultCache,
    default_cache,
    reset_default_cache,
    resolve_cache,
    sgb_all_key,
    sgb_any_key,
)
from repro.storage.store import LocalFileStore

BACKENDS = ["python"] + (["numpy"] if HAVE_NUMPY else [])


@pytest.fixture(autouse=True)
def isolated_cache_env(monkeypatch):
    """Neutralise SGB_CACHE (CI runs an off-smoke tier) and the default cache."""
    monkeypatch.delenv("SGB_CACHE", raising=False)
    reset_default_cache()
    yield
    reset_default_cache()


def random_points(rng, n, dims=2):
    return [tuple(rng.uniform(0, 10) for _ in range(dims)) for _ in range(n)]


def assert_same_grouping(a, b):
    assert a.groups == b.groups
    assert a.eliminated == b.eliminated
    assert a.points == b.points


class TestHitVsRecomputeBitIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_sgb_any_randomized(self, backend, seed):
        rng = random.Random(seed)
        points = PointSet.from_any(random_points(rng, 120), backend=backend)
        eps = rng.choice([0.3, 0.7, 1.2])
        cache = ResultCache.memory()
        cold = sgb_any(points, eps=eps, cache=cache)
        warm = sgb_any(points, eps=eps, cache=cache)
        fresh = sgb_any(points, eps=eps)  # no cache: the ground truth
        assert cache.hits == 1 and cache.puts == 1
        assert_same_grouping(warm, cold)
        assert_same_grouping(warm, fresh)
        assert warm.plan is None  # hits never resurrect a stale plan

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("on_overlap", ["JOIN-ANY", "ELIMINATE", "FORM-NEW-GROUP"])
    def test_sgb_all_randomized(self, backend, on_overlap):
        rng = random.Random(hash(on_overlap) % 1000)
        points = PointSet.from_any(random_points(rng, 80), backend=backend)
        cache = ResultCache.memory()
        cold = sgb_all(points, eps=0.8, on_overlap=on_overlap, seed=5, cache=cache)
        warm = sgb_all(points, eps=0.8, on_overlap=on_overlap, seed=5, cache=cache)
        fresh = sgb_all(points, eps=0.8, on_overlap=on_overlap, seed=5)
        assert cache.hits == 1
        assert_same_grouping(warm, cold)
        assert_same_grouping(warm, fresh)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_sim_join_randomized(self, backend):
        rng = random.Random(7)
        left = random_points(rng, 90)
        right = random_points(rng, 60)
        cache = ResultCache.memory()
        cold = sim_join(left, right, eps=0.5, backend=backend, cache=cache)
        warm = sim_join(left, right, eps=0.5, backend=backend, cache=cache)
        fresh = sim_join(left, right, eps=0.5, backend=backend)
        assert cache.hits == 1
        assert list(warm) == list(cold) == list(fresh)

    def test_knn_join_cached(self):
        rng = random.Random(11)
        left = random_points(rng, 50)
        right = random_points(rng, 40)
        cache = ResultCache.memory()
        cold = sim_join(left, right, k=3, cache=cache)
        warm = sim_join(left, right, k=3, cache=cache)
        assert cache.hits == 1
        assert list(warm) == list(cold)

    @pytest.mark.skipif(not HAVE_NUMPY, reason="needs both backends")
    def test_backends_share_no_entry_but_agree(self):
        """Backends key separately (different kernels) yet agree bit-identically."""
        rng = random.Random(3)
        points = random_points(rng, 100)
        cache = ResultCache.memory()
        via_np = sgb_any(PointSet.from_any(points, backend="numpy"), eps=0.6, cache=cache)
        via_py = sgb_any(PointSet.from_any(points, backend="python"), eps=0.6, cache=cache)
        assert cache.puts == 2 and cache.hits == 0
        assert_same_grouping(via_np, via_py)

    @pytest.mark.skipif(not HAVE_NUMPY, reason="needs both backends")
    def test_fingerprints_agree_across_backends(self):
        rng = random.Random(9)
        points = random_points(rng, 64, dims=3)
        fp_np = fingerprint_points(PointSet.from_any(points, backend="numpy"))
        fp_py = fingerprint_points(PointSet.from_any(points, backend="python"))
        assert fp_np == fp_py
        columns = [[p[d] for p in points] for d in range(3)]
        assert fingerprint_columns(columns) == fp_np


class TestKeySensitivity:
    def test_any_key_varies_with_every_result_parameter(self):
        base = ("f" * 32, 0.5, "L2", "index", "numpy")
        key = sgb_any_key(*base)
        variants = [
            ("e" * 32, 0.5, "L2", "index", "numpy"),
            ("f" * 32, 0.6, "L2", "index", "numpy"),
            ("f" * 32, 0.5, "LINF", "index", "numpy"),
            ("f" * 32, 0.5, "L2", "all-pairs", "numpy"),
            ("f" * 32, 0.5, "L2", "index", "python"),
        ]
        assert all(sgb_any_key(*v) != key for v in variants)

    def test_all_key_includes_overlap_and_seed(self):
        base = ("f" * 32, 0.5, "L2", "index", "JOIN-ANY", 0, "numpy")
        key = sgb_all_key(*base)
        assert sgb_all_key("f" * 32, 0.5, "L2", "index", "ELIMINATE", 0, "numpy") != key
        assert sgb_all_key("f" * 32, 0.5, "L2", "index", "JOIN-ANY", 1, "numpy") != key

    def test_mutated_input_misses(self):
        rng = random.Random(17)
        points = random_points(rng, 60)
        cache = ResultCache.memory()
        sgb_any(points, eps=0.5, cache=cache)
        sgb_any(points + [(0.25, 0.25)], eps=0.5, cache=cache)
        assert cache.hits == 0 and cache.puts == 2


class TestDamageTolerance:
    def seed_entry(self, tmp_path):
        """Warm a tiered cache, then return a COLD one over the same spill dir."""
        rng = random.Random(23)
        points = random_points(rng, 50)
        warmer = ResultCache.tiered(str(tmp_path))
        expected = sgb_any(points, eps=0.5, cache=warmer)
        cold = ResultCache.tiered(str(tmp_path))
        return points, expected, cold

    def test_cold_process_refills_from_disk(self, tmp_path):
        points, expected, cold = self.seed_entry(tmp_path)
        out = sgb_any(points, eps=0.5, cache=cold)
        assert cold.hits == 1
        assert_same_grouping(out, expected)

    def corrupt_each_file(self, tmp_path, mutate):
        store = LocalFileStore(str(tmp_path))
        names = store.keys()
        assert names, "the warm run should have spilled at least one entry"
        for key in names:
            path = store._path(key)
            blob = open(path, "rb").read()
            open(path, "wb").write(mutate(blob))

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda blob: blob[: len(blob) // 2],  # truncated mid-payload
            lambda blob: b"garbage-without-magic",  # foreign bytes
            lambda blob: blob[:8] + b"\x00" * (len(blob) - 8),  # zeroed pickle
            lambda blob: b"RPCACHE1" + pickle.dumps(("not", "a", "payload")) + b"x",
        ],
    )
    def test_corrupted_entries_degrade_to_recompute(self, tmp_path, mutate):
        points, expected, cold = self.seed_entry(tmp_path)
        self.corrupt_each_file(tmp_path, mutate)
        out = sgb_any(points, eps=0.5, cache=cold)
        assert cold.hits == 0  # damage reads as a miss...
        assert_same_grouping(out, expected)  # ...and the recompute is identical

    def test_corrupt_entry_is_deleted_on_read(self, tmp_path):
        store = LocalFileStore(str(tmp_path))
        cache = ResultCache(store)
        cache.put("deadbeef", ("some", "payload"))
        path = store._path("deadbeef")
        open(path, "wb").write(b"not-a-cache-entry")
        assert cache.get("deadbeef") is None
        assert not os.path.exists(path)

    def test_malformed_grouping_payload_is_a_miss(self, tmp_path):
        store = LocalFileStore(str(tmp_path))
        cache = ResultCache(store)
        cache.put("k", ("not", "a", "grouping"))
        assert cache.get_grouping("k") is None
        assert cache.hits == 0 and cache.misses == 1
        assert not os.path.exists(store._path("k"))

    def test_malformed_pairs_payload_is_a_miss(self, tmp_path):
        store = LocalFileStore(str(tmp_path))
        cache = ResultCache(store)
        cache.put("k", "definitely-not-pairs")
        assert cache.get_pairs("k") is None
        assert cache.hits == 0 and cache.misses == 1

    def test_eviction_under_tiny_disk_cap_still_correct(self, tmp_path):
        rng = random.Random(29)
        cache = ResultCache(
            LocalFileStore(str(tmp_path), max_bytes=512)  # a few entries at most
        )
        batches = [random_points(rng, 40) for _ in range(6)]
        cold = [sgb_any(b, eps=0.5, cache=cache) for b in batches]
        again = [sgb_any(b, eps=0.5, cache=cache) for b in batches]
        for a, b in zip(cold, again):
            assert_same_grouping(a, b)  # evicted or not, results are identical
        assert cache.store.total_bytes() <= 512


class TestConfiguration:
    def test_env_off_beats_explicit_instance(self, monkeypatch):
        monkeypatch.setenv("SGB_CACHE", "off")
        cache = ResultCache.memory()
        assert resolve_cache(cache) is None
        points = [(0.0, 0.0), (0.1, 0.1), (5.0, 5.0)]
        sgb_any(points, eps=1.0, cache=cache)
        sgb_any(points, eps=1.0, cache=cache)
        assert cache.hits == cache.misses == cache.puts == 0

    def test_env_on_enables_default_cache(self, monkeypatch):
        monkeypatch.setenv("SGB_CACHE", "on")
        assert resolve_cache(None) is default_cache()
        assert resolve_cache(True) is default_cache()

    def test_unset_env_means_no_cache(self):
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None

    def test_string_argument_builds_tiered_cache(self, tmp_path):
        resolved = resolve_cache(str(tmp_path))
        assert isinstance(resolved, ResultCache)
        resolved.put("k", ("v",))
        assert LocalFileStore(str(tmp_path)).keys()  # spilled to the directory

    def test_bogus_argument_raises(self):
        with pytest.raises(TypeError):
            resolve_cache(3.14)

    def test_clear_resets_counters_and_entries(self):
        cache = ResultCache.memory()
        cache.put("k", (1, 2))
        assert cache.get("k") == (1, 2)
        cache.clear()
        assert cache.get("k") is None
        assert cache.misses == 1 and cache.hits == 0 and cache.puts == 0
