"""Concurrency regression tests: stores, the result cache, and table-derived
caches are hammered from many threads and must stay internally consistent
(the HTTP server runs engine work for concurrent requests on a thread pool,
so all of these objects are genuinely shared across threads)."""

from __future__ import annotations

import random
import threading

from repro.minidb.database import Database
from repro.storage.cache import ResultCache
from repro.storage.store import LocalFileStore, MemStore, TieredStore

N_THREADS = 8
N_OPS = 400


def _hammer(worker, n_threads: int = N_THREADS):
    """Run ``worker(thread_index)`` across threads, surfacing any exception."""
    errors: list = []
    barrier = threading.Barrier(n_threads)

    def run(index: int) -> None:
        try:
            barrier.wait()
            worker(index)
        except Exception as exc:  # noqa: BLE001 - re-raised below
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(i,)) for i in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors, f"worker raised: {errors[0]!r}"


def test_memstore_stays_consistent_under_contention():
    store = MemStore(max_bytes=64 * 1024)

    def worker(index: int) -> None:
        rng = random.Random(index)
        for op in range(N_OPS):
            key = f"k{rng.randrange(32)}"
            roll = rng.random()
            if roll < 0.5:
                store.put(key, bytes(rng.randrange(1, 512)))
            elif roll < 0.9:
                value = store.get(key)
                assert value is None or isinstance(value, bytes)
            else:
                store.delete(key)

    _hammer(worker)
    # The byte total must equal the sum of what is actually stored — a lost
    # update would leave the accounting permanently skewed.
    keys = store.keys()
    actual = sum(len(store.get(k) or b"") for k in keys)
    assert store.total_bytes() == actual
    assert store.total_bytes() <= store.max_bytes


def test_tiered_store_promotions_race_safely(tmp_path):
    store = TieredStore(
        MemStore(max_bytes=8 * 1024),
        LocalFileStore(str(tmp_path), max_bytes=256 * 1024),
    )
    store.put("shared", b"x" * 100)

    def worker(index: int) -> None:
        rng = random.Random(1000 + index)
        for _ in range(N_OPS):
            if rng.random() < 0.3:
                store.put(f"k{rng.randrange(16)}", bytes(rng.randrange(1, 256)))
            else:
                # Hits on the disk tier promote into the mem tier while other
                # threads write — the promotion must never corrupt either.
                value = store.get("shared")
                assert value == b"x" * 100 or value is None

    _hammer(worker)
    assert store.get("shared") == b"x" * 100


def test_result_cache_counters_never_lose_increments():
    cache = ResultCache.memory()
    gets_per_thread = N_OPS

    def worker(index: int) -> None:
        rng = random.Random(7 + index)
        for _ in range(gets_per_thread):
            key = f"key{rng.randrange(8)}"
            if cache.get(key) is None:
                cache.put(key, {"payload": key})

    _hammer(worker)
    # Every get incremented exactly one of hits/misses; a data race on the
    # counters would make the sum fall short of the number of gets.
    assert cache.hits + cache.misses == N_THREADS * gets_per_thread
    assert cache.puts == cache.misses  # each miss was followed by one put


def test_table_derived_caches_survive_concurrent_reads_and_writes():
    db = Database()
    db.execute("CREATE TABLE pts (x DOUBLE, y DOUBLE)")
    db.insert_rows("pts", [(float(i % 13), float(i % 7)) for i in range(200)])
    table = db.table("pts")
    stop = threading.Event()
    writer_errors: list = []

    def writer() -> None:
        try:
            i = 0
            while not stop.is_set():
                db.insert_rows("pts", [(float(i % 13), float(i % 7))])
                i += 1
        except Exception as exc:  # noqa: BLE001 - surfaced below
            writer_errors.append(exc)

    def reader(index: int) -> None:
        for _ in range(60):
            stats = table.point_stats((0, 1))
            assert stats.count >= 200
            digest = table.point_fingerprint((0, 1))
            assert isinstance(digest, str) and digest

    writer_thread = threading.Thread(target=writer)
    writer_thread.start()
    try:
        _hammer(reader)
    finally:
        stop.set()
        writer_thread.join(timeout=60)
    assert not writer_errors, f"writer raised: {writer_errors[0]!r}"
    # Once quiescent, the caches converge on the final version's values.
    final = table.point_stats((0, 1))
    assert final.count == len(table.rows)
    assert table.point_fingerprint((0, 1)) == table.point_fingerprint((0, 1))
