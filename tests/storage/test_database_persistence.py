"""Durable tables: save/reopen round trips, DDL, and the context manager."""

from __future__ import annotations

import json
import math
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.exceptions import CatalogError, StorageError
from repro.minidb import Database
from repro.storage.catalog import TableStore

SRC = str(Path(__file__).resolve().parents[2] / "src")

ROWS = [
    (1, 2.0, 8.0, "a1"),
    (2, 3.0, 7.0, "a2"),
    (3, 7.0, 5.0, "a3"),
    (4, 8.0, 4.0, "a4"),
    (5, 5.0, 6.5, "bridge"),
    (6, -0.0, 5e-324, None),  # signed zero, subnormal, SQL NULL
]

SGB_SQL = (
    "SELECT count(*) FROM pts "
    "GROUP BY x, y DISTANCE-TO-ALL LINF WITHIN 3 ON-OVERLAP ELIMINATE"
)


def build_db(path):
    db = Database.open(str(path))
    db.create_table(
        "pts", [("id", "INT"), ("x", "FLOAT"), ("y", "FLOAT"), ("tag", "TEXT")],
        persistent=True,
    )
    db.insert_rows("pts", ROWS)
    return db


class TestRoundTrip:
    def test_rows_version_and_schema_survive_reopen(self, tmp_path):
        db = build_db(tmp_path)
        version = db.table("pts").version
        db.close()

        reopened = Database.open(str(tmp_path))
        table = reopened.table("pts")
        assert table.rows == [tuple(r) for r in ROWS]
        assert table.version == version
        assert table.persistent
        assert [c.name for c in table.schema.columns] == ["id", "x", "y", "tag"]
        # Bit-level checks the tuple equality above cannot see.
        assert math.copysign(1.0, table.rows[5][1]) == -1.0
        assert table.rows[5][2] == 5e-324
        reopened.close()

    def test_sql_answers_bit_identically_after_reopen(self, tmp_path):
        db = build_db(tmp_path)
        before = db.execute(SGB_SQL).rows
        db.close()
        reopened = Database.open(str(tmp_path))
        assert reopened.execute(SGB_SQL).rows == before
        reopened.close()

    def test_fresh_subprocess_answers_identically(self, tmp_path):
        """The acceptance check: a brand-new interpreter reads the same answer."""
        db = build_db(tmp_path)
        expected = db.execute(SGB_SQL).rows
        db.close()
        script = (
            "import json, sys\n"
            "from repro.minidb import Database\n"
            f"db = Database.open({str(tmp_path)!r})\n"
            f"rows = db.execute({SGB_SQL!r}).rows\n"
            "print(json.dumps(rows))\n"
        )
        env = dict(os.environ, PYTHONPATH=SRC)
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, check=True,
        )
        assert json.loads(out.stdout) == [list(r) for r in expected]

    def test_sql_persistent_ddl_round_trips(self, tmp_path):
        with Database.open(str(tmp_path)) as db:
            db.execute("CREATE TABLE t (a INT, b TEXT) PERSISTENT")
            db.execute("INSERT INTO t VALUES (1, 'one'), (2, 'two')")
        with Database.open(str(tmp_path)) as db:
            assert db.execute("SELECT a, b FROM t").rows == [(1, "one"), (2, "two")]

    def test_restored_stats_cache_is_reused(self, tmp_path):
        db = build_db(tmp_path)
        stats = db.table("pts").point_stats((1, 2))  # populate the cache
        db.close()
        reopened = Database.open(str(tmp_path))
        table = reopened.table("pts")
        assert table._stats_cache  # restored from sqlite, not recollected
        restored = table.point_stats((1, 2))
        assert restored.count == stats.count
        assert restored.low == stats.low
        assert restored.high == stats.high
        assert restored.histograms == stats.histograms
        reopened.close()


class TestSaveSemantics:
    def test_save_skips_clean_tables(self, tmp_path):
        db = build_db(tmp_path)
        assert db.save() == 1
        assert db.save() == 0  # version unchanged: nothing rewritten
        db.table("pts").insert((7, 1.0, 1.0, "late"))
        assert db.save() == 1
        db.close()

    def test_transient_tables_never_hit_disk(self, tmp_path):
        db = Database.open(str(tmp_path))
        db.create_table("scratch", [("v", "INT")])
        db.insert_rows("scratch", [(1,)])
        db.save()
        db.close()
        reopened = Database.open(str(tmp_path))
        assert not reopened.has_table("scratch")
        reopened.close()

    def test_save_without_path_raises(self):
        with pytest.raises(StorageError):
            Database().save()

    def test_persistent_without_path_raises(self):
        db = Database()
        with pytest.raises(CatalogError):
            db.create_table("t", [("a", "INT")], persistent=True)
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE t (a INT) PERSISTENT")

    def test_drop_removes_stored_files(self, tmp_path):
        db = build_db(tmp_path)
        db.save()
        assert os.path.isdir(tmp_path / "tables" / "pts")
        db.execute("DROP TABLE pts")
        assert not os.path.isdir(tmp_path / "tables" / "pts")
        db.close()
        reopened = Database.open(str(tmp_path))
        assert not reopened.has_table("pts")
        reopened.close()


class TestLifecycle:
    def test_context_manager_flushes_and_releases(self, tmp_path):
        with Database.open(str(tmp_path)) as db:
            db.execute("CREATE TABLE t (a INT) PERSISTENT")
            db.execute("INSERT INTO t VALUES (42)")
            store = db.store
        assert store.closed
        with pytest.raises(StorageError):
            store.table_names()
        assert TableStore(str(tmp_path)).table_names() == ["t"]

    def test_close_is_idempotent_and_keeps_memory_queryable(self, tmp_path):
        db = build_db(tmp_path)
        db.close()
        db.close()
        assert db.execute("SELECT count(*) FROM pts").scalar() == len(ROWS)

    def test_format_version_mismatch_fails_loudly(self, tmp_path):
        db = Database.open(str(tmp_path))
        conn = db.store._conn
        conn.execute("UPDATE meta SET value = '999' WHERE key = 'format'")
        conn.commit()
        db.close()
        with pytest.raises(StorageError):
            Database.open(str(tmp_path))
