"""Eviction and tiering behaviour of the byte stores behind the result cache."""

from __future__ import annotations

import os

from repro.storage.store import LocalFileStore, MemStore, TieredStore


class TestMemStore:
    def test_roundtrip_and_miss(self):
        store = MemStore(max_bytes=1024)
        store.put("a", b"payload")
        assert store.get("a") == b"payload"
        assert store.get("missing") is None

    def test_lru_eviction_under_tiny_cap(self):
        store = MemStore(max_bytes=30)
        store.put("a", b"x" * 10)
        store.put("b", b"y" * 10)
        store.put("c", b"z" * 10)
        assert sorted(store.keys()) == ["a", "b", "c"]
        store.get("a")  # refresh recency; "b" is now the LRU entry
        store.put("d", b"w" * 10)
        assert sorted(store.keys()) == ["a", "c", "d"]
        assert store.total_bytes() == 30

    def test_oversized_payload_not_retained(self):
        store = MemStore(max_bytes=8)
        store.put("big", b"x" * 64)
        assert store.get("big") is None
        assert store.total_bytes() == 0

    def test_replace_accounts_bytes(self):
        store = MemStore(max_bytes=100)
        store.put("a", b"x" * 60)
        store.put("a", b"y" * 10)
        assert store.total_bytes() == 10
        store.delete("a")
        assert store.total_bytes() == 0


class TestLocalFileStore:
    def test_roundtrip_and_delete(self, tmp_path):
        store = LocalFileStore(str(tmp_path), max_bytes=1024)
        store.put("k1", b"hello")
        assert store.get("k1") == b"hello"
        assert store.keys() == ["k1"]
        store.delete("k1")
        assert store.get("k1") is None

    def test_eviction_under_tiny_cap(self, tmp_path):
        store = LocalFileStore(str(tmp_path), max_bytes=25)
        store.put("a", b"x" * 10)
        os.utime(store._path("a"), (1, 1))  # force "a" to be the oldest
        store.put("b", b"y" * 10)
        store.put("c", b"z" * 10)  # 30 bytes > cap: the oldest file goes
        assert "a" not in store.keys()
        assert store.total_bytes() <= 25

    def test_oversized_payload_not_written(self, tmp_path):
        store = LocalFileStore(str(tmp_path), max_bytes=4)
        store.put("big", b"x" * 64)
        assert store.keys() == []

    def test_survives_process_restart(self, tmp_path):
        LocalFileStore(str(tmp_path)).put("k", b"persisted")
        assert LocalFileStore(str(tmp_path)).get("k") == b"persisted"


class TestTieredStore:
    def test_writes_reach_both_tiers(self, tmp_path):
        mem = MemStore(max_bytes=1024)
        disk = LocalFileStore(str(tmp_path), max_bytes=1024)
        tiered = TieredStore(mem, disk)
        tiered.put("k", b"v")
        assert mem.get("k") == b"v"
        assert disk.get("k") == b"v"

    def test_disk_hit_promotes_into_memory(self, tmp_path):
        mem = MemStore(max_bytes=1024)
        disk = LocalFileStore(str(tmp_path), max_bytes=1024)
        disk.put("cold", b"from-disk")
        tiered = TieredStore(mem, disk)
        assert tiered.get("cold") == b"from-disk"
        assert mem.get("cold") == b"from-disk"

    def test_delete_hits_every_tier(self, tmp_path):
        mem = MemStore(max_bytes=1024)
        disk = LocalFileStore(str(tmp_path), max_bytes=1024)
        tiered = TieredStore(mem, disk)
        tiered.put("k", b"v")
        tiered.delete("k")
        assert mem.get("k") is None and disk.get("k") is None
        assert tiered.get("k") is None
