"""Round-trip and damage tests for the on-disk columnar format."""

from __future__ import annotations

import datetime as dt
import math
import os
import struct

import pytest

from repro.exceptions import StorageError
from repro.minidb.types import DataType
from repro.storage.columnar import (
    column_filename,
    read_column,
    read_column_header,
    write_column,
)


def roundtrip(tmp_path, dtype, values, name="c"):
    path = os.path.join(tmp_path, "col.col")
    write_column(path, name, dtype, values)
    stored_name, stored_dtype, out = read_column(path)
    assert stored_name == name
    assert stored_dtype is dtype
    return out


class TestFloatColumns:
    def test_plain_values(self, tmp_path):
        values = [0.0, 1.5, -2.25, 1e300, -1e-300]
        assert roundtrip(tmp_path, DataType.FLOAT, values) == values

    def test_signed_zero_survives_bit_identically(self, tmp_path):
        out = roundtrip(tmp_path, DataType.FLOAT, [0.0, -0.0])
        assert [math.copysign(1.0, v) for v in out] == [1.0, -1.0]

    def test_subnormals_and_extremes_bit_identical(self, tmp_path):
        values = [
            5e-324,  # smallest positive subnormal
            -5e-324,
            2.2250738585072014e-308,  # smallest normal
            1.7976931348623157e308,  # largest finite
            math.pi,
        ]
        out = roundtrip(tmp_path, DataType.FLOAT, values)
        assert [struct.pack("<d", v) for v in out] == [
            struct.pack("<d", v) for v in values
        ]

    def test_nulls_interleaved(self, tmp_path):
        values = [None, 1.0, None, None, 2.5, None]
        assert roundtrip(tmp_path, DataType.FLOAT, values) == values


class TestIntColumns:
    def test_int64_range(self, tmp_path):
        values = [0, 1, -1, 2**63 - 1, -(2**63)]
        assert roundtrip(tmp_path, DataType.INT, values) == values

    def test_bigints_escape_to_decimal_frames(self, tmp_path):
        values = [2**63, -(2**100), 10**40, 7]
        out = roundtrip(tmp_path, DataType.INT, values)
        assert out == values
        assert all(isinstance(v, int) for v in out)

    def test_nulls(self, tmp_path):
        values = [None, 5, None, -9]
        assert roundtrip(tmp_path, DataType.INT, values) == values


class TestOtherTypes:
    def test_bool(self, tmp_path):
        values = [True, False, None, True, True, False, None, False, True]
        assert roundtrip(tmp_path, DataType.BOOL, values) == values

    def test_date(self, tmp_path):
        values = [dt.date(1, 1, 1), dt.date(2026, 8, 8), None, dt.date(9999, 12, 31)]
        assert roundtrip(tmp_path, DataType.DATE, values) == values

    def test_text_unicode_and_empty(self, tmp_path):
        values = ["", "plain", "éèê", "\U0001f600 emoji", None, "line\nbreak\ttab"]
        assert roundtrip(tmp_path, DataType.TEXT, values) == values

    def test_text_lone_surrogates_survive(self, tmp_path):
        values = ["ok", "\ud800bad\udfff"]
        assert roundtrip(tmp_path, DataType.TEXT, values) == values

    def test_empty_column(self, tmp_path):
        assert roundtrip(tmp_path, DataType.FLOAT, []) == []
        assert roundtrip(tmp_path, DataType.TEXT, []) == []

    def test_all_null_column(self, tmp_path):
        values = [None, None, None]
        assert roundtrip(tmp_path, DataType.INT, values) == values


class TestDamage:
    def write(self, tmp_path, values=(1.0, 2.0, 3.0)):
        path = os.path.join(tmp_path, "col.col")
        write_column(path, "x", DataType.FLOAT, list(values))
        return path

    def test_bad_magic(self, tmp_path):
        path = self.write(tmp_path)
        blob = open(path, "rb").read()
        open(path, "wb").write(b"NOTCOL!" + blob[7:])
        with pytest.raises(StorageError):
            read_column(path)

    def test_truncated_payload(self, tmp_path):
        path = self.write(tmp_path)
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[:-5])
        with pytest.raises(StorageError):
            read_column(path)

    def test_flipped_payload_byte_fails_checksum(self, tmp_path):
        path = self.write(tmp_path)
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        with pytest.raises(StorageError):
            read_column(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            read_column(os.path.join(tmp_path, "absent.col"))

    def test_header_peek_tolerates_damage(self, tmp_path):
        path = self.write(tmp_path)
        header = read_column_header(path)
        assert header is not None and header["name"] == "x" and header["count"] == 3
        open(path, "wb").write(b"garbage")
        assert read_column_header(path) is None


def test_column_filename_sanitises():
    assert column_filename(2, "x y/z") == "col_002_x_y_z.col"
