"""Warm-start checkpoints: streaming resume bit-identity and damage tolerance."""

from __future__ import annotations

import os
import random

from repro.storage.checkpoint import load_checkpoint, save_checkpoint
from repro.stream.session import StreamingSGB


def random_points(rng, n):
    return [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(n)]


def flush_key(window):
    return (
        window.window_id,
        window.epoch,
        window.start,
        window.end,
        list(window.indices),
        [list(g) for g in window.result.groups],
        list(window.result.eliminated),
        list(window.result.points),
        [(d.kind.value, d.group, d.members, d.added, d.sources) for d in window.deltas],
    )


class TestCheckpointHelpers:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "ck")
        save_checkpoint({"a": [1, 2, 3]}, path)
        assert load_checkpoint(path) == {"a": [1, 2, 3]}

    def test_missing_file_is_none(self, tmp_path):
        assert load_checkpoint(str(tmp_path / "absent")) is None

    def test_truncated_file_is_none(self, tmp_path):
        path = str(tmp_path / "ck")
        save_checkpoint(list(range(1000)), path)
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[: len(blob) // 2])
        assert load_checkpoint(path) is None

    def test_foreign_bytes_are_none(self, tmp_path):
        path = str(tmp_path / "ck")
        open(path, "wb").write(b"this is not a checkpoint")
        assert load_checkpoint(path) is None

    def test_save_is_atomic(self, tmp_path):
        path = str(tmp_path / "ck")
        save_checkpoint("first", path)
        save_checkpoint("second", path)
        assert load_checkpoint(path) == "second"
        assert [n for n in os.listdir(tmp_path) if ".tmp." in n] == []


class TestStreamingResume:
    def run_split(self, tmp_path, seed=41, n=200, split=110):
        """One continuous session vs. checkpoint-at-split + resumed session."""
        rng = random.Random(seed)
        points = random_points(rng, n)
        path = str(tmp_path / "stream.ck")

        continuous = StreamingSGB(eps=0.8, window=40, slide=20)
        straight = list(continuous.ingest(points))
        straight += continuous.close()

        first = StreamingSGB(eps=0.8, window=40, slide=20)
        flushes = list(first.ingest(points[:split]))
        first.checkpoint(path)

        resumed = StreamingSGB.resume(path)
        assert resumed is not None
        flushes += resumed.ingest(points[split:])
        flushes += resumed.close()
        return straight, flushes

    def test_resumed_windows_bit_identical(self, tmp_path):
        straight, resumed = self.run_split(tmp_path)
        assert len(straight) > 2
        assert [flush_key(w) for w in resumed] == [flush_key(w) for w in straight]

    def test_resume_mid_epoch(self, tmp_path):
        # A split that is NOT aligned to the slide: the open epoch is pickled too.
        straight, resumed = self.run_split(tmp_path, seed=5, split=73)
        assert [flush_key(w) for w in resumed] == [flush_key(w) for w in straight]

    def test_damaged_checkpoint_resumes_as_none(self, tmp_path):
        path = str(tmp_path / "stream.ck")
        session = StreamingSGB(eps=0.8, window=10)
        session.ingest(random_points(random.Random(1), 25))
        session.checkpoint(path)
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[:20])
        assert StreamingSGB.resume(path) is None
        assert StreamingSGB.resume(str(tmp_path / "never-written")) is None

    def test_wrong_format_payload_resumes_as_none(self, tmp_path):
        path = str(tmp_path / "stream.ck")
        save_checkpoint({"format": "something-else/9", "session": object()}, path)
        assert StreamingSGB.resume(path) is None
        save_checkpoint(["not", "a", "dict"], path)
        assert StreamingSGB.resume(path) is None
