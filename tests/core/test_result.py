"""Tests for GroupingResult."""

import pytest

from repro.core.result import GroupingResult
from repro.exceptions import EmptyInputError


@pytest.fixture
def result():
    return GroupingResult(
        groups=[[0, 1, 2], [3, 4]],
        eliminated=[5],
        points=[(0, 0), (0.1, 0), (0, 0.1), (5, 5), (5.1, 5.1), (9, 9)],
    )


class TestBasicViews:
    def test_group_count_and_sizes(self, result):
        assert result.group_count == 2
        assert result.group_sizes() == [3, 2]

    def test_labels_mark_eliminated_rows(self, result):
        assert result.labels() == [0, 0, 0, 1, 1, -1]

    def test_assignment_excludes_eliminated(self, result):
        assignment = result.assignment()
        assert assignment == {0: 0, 1: 0, 2: 0, 3: 1, 4: 1}
        assert 5 not in assignment

    def test_group_points_returns_coordinates(self, result):
        assert result.group_points(1) == [(5, 5), (5.1, 5.1)]

    def test_group_polygon_of_small_group(self, result):
        polygon = result.group_polygon(1)
        assert polygon.vertex_count == 2

    def test_summary_mentions_counts(self, result):
        text = result.summary()
        assert "2 groups" in text
        assert "6 points" in text
        assert "1 eliminated" in text


class TestPartitionCheck:
    def test_valid_partition(self, result):
        assert result.is_partition()

    def test_duplicate_membership_is_not_a_partition(self):
        bad = GroupingResult(groups=[[0, 1], [1]], eliminated=[], points=[(0, 0)] * 2)
        assert not bad.is_partition()

    def test_missing_row_is_not_a_partition(self):
        bad = GroupingResult(groups=[[0]], eliminated=[], points=[(0, 0), (1, 1)])
        assert not bad.is_partition()

    def test_eliminated_and_grouped_overlap_is_invalid(self):
        bad = GroupingResult(groups=[[0, 1]], eliminated=[1], points=[(0, 0), (1, 1)])
        assert not bad.is_partition()


class TestEmptyResult:
    def test_empty_constructor(self):
        empty = GroupingResult.empty()
        assert empty.group_count == 0
        assert empty.is_partition()
        assert empty.labels() == []

    def test_polygon_of_empty_group_raises(self):
        result = GroupingResult(groups=[[]], eliminated=[], points=[])
        with pytest.raises(EmptyInputError):
            result.group_polygon(0)
