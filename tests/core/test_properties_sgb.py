"""Property-based tests (hypothesis) for the SGB operator invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import sgb_all, sgb_any
from repro.core.distance import chebyshev, euclidean

# Small coordinate grid keeps the generated scenarios interesting (lots of
# near-threshold pairs) while staying fast.
coordinate = st.integers(min_value=0, max_value=12).map(lambda v: v / 2.0)
point = st.tuples(coordinate, coordinate)
point_list = st.lists(point, min_size=0, max_size=25)
eps_values = st.sampled_from([0.5, 1.0, 1.5, 2.5])
metrics = st.sampled_from(["L2", "LINF"])
overlaps = st.sampled_from(["JOIN-ANY", "ELIMINATE", "FORM-NEW-GROUP"])
strategies_all = st.sampled_from(["all-pairs", "bounds-checking", "index"])


def _dist(metric):
    return euclidean if metric == "L2" else chebyshev


@settings(max_examples=60, deadline=None)
@given(points=point_list, eps=eps_values, metric=metrics, overlap=overlaps, strategy=strategies_all)
def test_sgb_all_output_is_partition(points, eps, metric, overlap, strategy):
    result = sgb_all(points, eps=eps, metric=metric, on_overlap=overlap, strategy=strategy)
    assert result.is_partition()


@settings(max_examples=60, deadline=None)
@given(points=point_list, eps=eps_values, metric=metrics, overlap=overlaps, strategy=strategies_all)
def test_sgb_all_groups_are_cliques(points, eps, metric, overlap, strategy):
    result = sgb_all(points, eps=eps, metric=metric, on_overlap=overlap, strategy=strategy)
    dist = _dist(metric)
    for members in result.groups:
        coords = [points[i] for i in members]
        for i in range(len(coords)):
            for j in range(i + 1, len(coords)):
                assert dist(coords[i], coords[j]) <= eps + 1e-9


@settings(max_examples=60, deadline=None)
@given(points=point_list, eps=eps_values, metric=metrics)
def test_sgb_all_deterministic_semantics_agree_across_strategies(points, eps, metric):
    """ELIMINATE is deterministic: every strategy must produce the same grouping."""
    outcomes = [
        sorted(
            map(
                tuple,
                sgb_all(
                    points, eps=eps, metric=metric, on_overlap="ELIMINATE", strategy=s
                ).groups,
            )
        )
        for s in ("all-pairs", "bounds-checking", "index")
    ]
    assert outcomes[0] == outcomes[1] == outcomes[2]


@settings(max_examples=60, deadline=None)
@given(points=point_list, eps=eps_values, metric=metrics)
def test_sgb_any_matches_reference_connected_components(points, eps, metric):
    """SGB-Any must equal the connected components of the epsilon graph."""
    result = sgb_any(points, eps=eps, metric=metric, strategy="index")
    dist = _dist(metric)

    # Reference: brute-force union-find over all pairs.
    parent = list(range(len(points)))

    def find(i):
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i, j):
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[ri] = rj

    for i in range(len(points)):
        for j in range(i + 1, len(points)):
            if dist(points[i], points[j]) <= eps:
                union(i, j)
    reference = {}
    for i in range(len(points)):
        reference.setdefault(find(i), set()).add(i)

    produced = {frozenset(g) for g in result.groups}
    expected = {frozenset(v) for v in reference.values()}
    assert produced == expected


@settings(max_examples=50, deadline=None)
@given(points=point_list, eps=eps_values, metric=metrics)
def test_sgb_any_never_has_more_groups_than_sgb_all(points, eps, metric):
    any_result = sgb_any(points, eps=eps, metric=metric)
    all_result = sgb_all(points, eps=eps, metric=metric, on_overlap="JOIN-ANY")
    assert any_result.group_count <= all_result.group_count


@settings(max_examples=50, deadline=None)
@given(points=point_list, eps=eps_values)
def test_larger_eps_never_increases_sgb_any_group_count(points, eps):
    small = sgb_any(points, eps=eps)
    large = sgb_any(points, eps=eps * 2)
    assert large.group_count <= small.group_count


@settings(max_examples=40, deadline=None)
@given(points=point_list, eps=eps_values, metric=metrics)
def test_eliminated_points_overlap_multiple_groups_or_members(points, eps, metric):
    """ELIMINATE only ever drops points; groups stay cliques and nothing is lost."""
    result = sgb_all(points, eps=eps, metric=metric, on_overlap="ELIMINATE")
    grouped = {i for g in result.groups for i in g}
    assert grouped | set(result.eliminated) == set(range(len(points)))
    assert grouped & set(result.eliminated) == set()


@settings(max_examples=40, deadline=None)
@given(points=point_list, eps=eps_values, metric=metrics)
def test_form_new_group_keeps_every_point(points, eps, metric):
    result = sgb_all(points, eps=eps, metric=metric, on_overlap="FORM-NEW-GROUP")
    assert result.eliminated == []
    assert sum(result.group_sizes()) == len(points)


@settings(max_examples=40, deadline=None)
@given(points=point_list, eps=eps_values)
def test_duplicate_points_always_share_a_group_in_sgb_any(points, eps):
    if not points:
        return
    duplicated = list(points) + [points[0]]
    result = sgb_any(duplicated, eps=eps)
    labels = result.labels()
    assert labels[0] == labels[len(duplicated) - 1]
