"""Tests for Rect and the epsilon-All bounding rectangle (paper Definition 5)."""

import pytest

from repro.core.distance import chebyshev
from repro.core.rectangle import EpsAllRectangle, Rect, union_rects
from repro.exceptions import DimensionalityError, InvalidParameterError


class TestRectConstruction:
    def test_from_point_with_radius(self):
        rect = Rect.from_point((1.0, 2.0), 0.5)
        assert rect.low == (0.5, 1.5)
        assert rect.high == (1.5, 2.5)

    def test_from_point_negative_radius_rejected(self):
        with pytest.raises(InvalidParameterError):
            Rect.from_point((0, 0), -1)

    def test_from_points_is_mbr(self):
        rect = Rect.from_points([(0, 5), (2, 1), (-1, 3)])
        assert rect.low == (-1, 1)
        assert rect.high == (2, 5)

    def test_from_points_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            Rect.from_points([])

    def test_invalid_low_high_rejected(self):
        with pytest.raises(InvalidParameterError):
            Rect((1.0, 0.0), (0.0, 1.0))

    def test_mixed_dimensionality_rejected(self):
        with pytest.raises(DimensionalityError):
            Rect((0.0,), (1.0, 1.0))


class TestRectGeometry:
    def test_area_and_margin(self):
        rect = Rect((0, 0), (2, 3))
        assert rect.area() == 6
        assert rect.margin() == 5

    def test_center_and_extents(self):
        rect = Rect((0, 0), (2, 4))
        assert rect.center == (1, 2)
        assert rect.extents == (2, 4)

    def test_contains_point_boundary_inclusive(self):
        rect = Rect((0, 0), (1, 1))
        assert rect.contains_point((0, 0))
        assert rect.contains_point((1, 1))
        assert rect.contains_point((0.5, 0.5))
        assert not rect.contains_point((1.0001, 0.5))

    def test_contains_rect(self):
        outer = Rect((0, 0), (10, 10))
        inner = Rect((2, 2), (3, 3))
        assert outer.contains_rect(inner)
        assert not inner.contains_rect(outer)

    def test_intersects_boundary_touch_counts(self):
        a = Rect((0, 0), (1, 1))
        b = Rect((1, 1), (2, 2))
        assert a.intersects(b)

    def test_disjoint_rects_do_not_intersect(self):
        a = Rect((0, 0), (1, 1))
        b = Rect((2, 2), (3, 3))
        assert not a.intersects(b)
        assert a.intersection(b) is None

    def test_intersection_is_overlap_region(self):
        a = Rect((0, 0), (2, 2))
        b = Rect((1, 1), (3, 3))
        inter = a.intersection(b)
        assert inter == Rect((1, 1), (2, 2))

    def test_union_covers_both(self):
        a = Rect((0, 0), (1, 1))
        b = Rect((2, 2), (3, 3))
        union = a.union(b)
        assert union.contains_rect(a) and union.contains_rect(b)

    def test_enlargement_zero_for_contained_rect(self):
        outer = Rect((0, 0), (4, 4))
        inner = Rect((1, 1), (2, 2))
        assert outer.enlargement(inner) == 0.0
        assert inner.enlargement(outer) == pytest.approx(16 - 1)

    def test_min_distance_to_point(self):
        rect = Rect((0, 0), (1, 1))
        assert rect.min_distance_to_point((0.5, 0.5)) == 0.0
        assert rect.min_distance_to_point((4, 5)) == pytest.approx(5.0)

    def test_union_rects_helper(self):
        rects = [Rect((0, 0), (1, 1)), Rect((5, 5), (6, 7))]
        combined = union_rects(rects)
        assert combined == Rect((0, 0), (6, 7))

    def test_union_rects_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            union_rects([])


class TestEpsAllRectangle:
    """Behaviour described in paper Figures 5c-5e."""

    def test_initial_rectangle_is_2eps_box(self):
        rect = EpsAllRectangle(2.0, (3.0, 3.0))
        assert rect.rect == Rect((1.0, 1.0), (5.0, 5.0))
        assert rect.member_count == 1

    def test_requires_positive_eps(self):
        with pytest.raises(InvalidParameterError):
            EpsAllRectangle(0.0, (0.0, 0.0))

    def test_shrinks_when_member_added(self):
        rect = EpsAllRectangle(2.0, (3.0, 3.0))
        before = rect.rect.area()
        rect.add((4.0, 3.0))
        after = rect.rect.area()
        assert after < before
        assert rect.member_count == 2

    def test_monotone_shrinking(self):
        rect = EpsAllRectangle(1.0, (0.0, 0.0))
        areas = [rect.rect.area()]
        for point in [(0.5, 0.0), (0.0, 0.5), (0.4, 0.4)]:
            rect.add(point)
            areas.append(rect.rect.area())
        assert all(a >= b for a, b in zip(areas, areas[1:]))

    def test_never_smaller_than_eps_per_side_for_linf_cliques(self):
        # Members pairwise within eps (LINF) keep each side >= eps.
        eps = 1.0
        members = [(0.0, 0.0), (0.9, 0.0), (0.0, 0.9), (0.9, 0.9)]
        rect = EpsAllRectangle(eps, members[0])
        for m in members[1:]:
            rect.add(m)
        for extent in rect.rect.extents:
            assert extent >= eps - 1e-12

    def test_linf_invariant_point_inside_is_close_to_all_members(self):
        """The key correctness property: inside the rectangle => within eps of all."""
        eps = 1.5
        members = [(0.0, 0.0)]
        rect = EpsAllRectangle(eps, members[0])
        for candidate in [(1.0, 0.5), (-0.3, 0.8), (0.4, -0.4)]:
            if rect.contains(candidate):
                assert all(chebyshev(candidate, m) <= eps for m in members)
                rect.add(candidate)
                members.append(candidate)

    def test_members_always_inside_own_rectangle(self):
        eps = 1.0
        members = [(0.0, 0.0), (0.5, 0.5), (0.2, 0.9)]
        rect = EpsAllRectangle(eps, members[0])
        for m in members[1:]:
            rect.add(m)
        for m in members:
            assert rect.contains(m)
