"""Tests for the convex-hull L2 refinement (Procedure 6)."""

import math

import pytest

from repro.core.distance import Metric
from repro.core.hull_filter import convex_hull_test
from repro.core.predicates import SimilarityPredicate
from repro.geometry.convex_hull import convex_hull


@pytest.fixture
def predicate():
    return SimilarityPredicate(Metric.L2, 6.0)


class TestConvexHullTest:
    def test_point_inside_hull_accepted(self, predicate):
        hull = convex_hull([(0, 0), (4, 0), (4, 4), (0, 4)])
        assert convex_hull_test((2, 2), hull, predicate)

    def test_point_on_hull_boundary_accepted(self, predicate):
        hull = convex_hull([(0, 0), (4, 0), (4, 4), (0, 4)])
        assert convex_hull_test((4, 2), hull, predicate)

    def test_outside_point_accepted_when_farthest_vertex_within_eps(self, predicate):
        hull = convex_hull([(0, 0), (3, 0), (3, 3), (0, 3)])
        # (5, 1.5): farthest hull vertex is (0, 0) or (0, 3), distance ~5.2 <= 6.
        assert convex_hull_test((5, 1.5), hull, predicate)

    def test_outside_point_rejected_when_farthest_vertex_too_far(self, predicate):
        hull = convex_hull([(0, 0), (3, 0), (3, 3), (0, 3)])
        # (9, 1.5): farthest vertex (0,0)/(0,3) is ~9.1 away > 6.
        assert not convex_hull_test((9, 1.5), hull, predicate)

    def test_empty_hull_is_accepted(self, predicate):
        assert convex_hull_test((1, 1), [], predicate)

    def test_singleton_hull_uses_distance_to_the_point(self, predicate):
        assert convex_hull_test((3, 4), [(0.0, 0.0)], predicate)       # distance 5
        assert not convex_hull_test((30, 40), [(0.0, 0.0)], predicate)

    def test_equivalence_with_exhaustive_check_on_random_groups(self):
        """The hull test must agree with the exact all-members check."""
        import random

        rng = random.Random(5)
        eps = 1.0
        predicate = SimilarityPredicate(Metric.L2, eps)
        for _ in range(50):
            # Build a clique: points inside a circle of diameter eps.
            cx, cy = rng.uniform(0, 10), rng.uniform(0, 10)
            members = []
            while len(members) < 6:
                x = cx + rng.uniform(-eps / 2, eps / 2) * 0.7
                y = cy + rng.uniform(-eps / 2, eps / 2) * 0.7
                if all(math.dist((x, y), m) <= eps for m in members):
                    members.append((x, y))
            hull = convex_hull(members)
            probe = (cx + rng.uniform(-eps, eps), cy + rng.uniform(-eps, eps))
            exact = all(math.dist(probe, m) <= eps for m in members)
            assert convex_hull_test(probe, hull, predicate) == exact
