"""Tests for the ON-OVERLAP action parsing."""

import pytest

from repro.core.overlap import OverlapAction
from repro.exceptions import InvalidParameterError


class TestOverlapActionParsing:
    def test_enum_passthrough(self):
        assert OverlapAction.parse(OverlapAction.ELIMINATE) is OverlapAction.ELIMINATE

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("JOIN-ANY", OverlapAction.JOIN_ANY),
            ("join-any", OverlapAction.JOIN_ANY),
            ("join_any", OverlapAction.JOIN_ANY),
            ("ELIMINATE", OverlapAction.ELIMINATE),
            ("eliminate", OverlapAction.ELIMINATE),
            ("FORM-NEW-GROUP", OverlapAction.FORM_NEW_GROUP),
            ("form_new_group", OverlapAction.FORM_NEW_GROUP),
            ("FORM-NEW", OverlapAction.FORM_NEW_GROUP),
        ],
    )
    def test_string_aliases(self, text, expected):
        assert OverlapAction.parse(text) is expected

    def test_unknown_action_raises(self):
        with pytest.raises(InvalidParameterError):
            OverlapAction.parse("MERGE")

    def test_sql_keyword_value(self):
        assert OverlapAction.JOIN_ANY.value == "JOIN-ANY"
        assert OverlapAction.FORM_NEW_GROUP.value == "FORM-NEW-GROUP"
