"""Behavioural tests for the SGB-All operator (paper Section 6)."""

import pytest

from repro.core.api import sgb_all
from repro.core.distance import Metric, chebyshev, euclidean
from repro.core.sgb_all import SGBAllGrouper, SGBAllStrategy
from repro.exceptions import InvalidParameterError

STRATEGIES = ["all-pairs", "bounds-checking", "index"]


class TestStrategyParsing:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("all-pairs", SGBAllStrategy.ALL_PAIRS),
            ("naive", SGBAllStrategy.ALL_PAIRS),
            ("bounds", SGBAllStrategy.BOUNDS_CHECKING),
            ("bounds_checking", SGBAllStrategy.BOUNDS_CHECKING),
            ("index", SGBAllStrategy.INDEX),
            ("rtree", SGBAllStrategy.INDEX),
        ],
    )
    def test_aliases(self, text, expected):
        assert SGBAllStrategy.parse(text) is expected

    def test_unknown_strategy_raises(self):
        with pytest.raises(InvalidParameterError):
            SGBAllStrategy.parse("quadtree")


@pytest.mark.parametrize("strategy", STRATEGIES)
class TestBasicGrouping:
    def test_empty_input(self, strategy):
        result = sgb_all([], eps=1.0, strategy=strategy)
        assert result.group_count == 0
        assert result.is_partition()

    def test_single_point_forms_single_group(self, strategy):
        result = sgb_all([(1.0, 2.0)], eps=1.0, strategy=strategy)
        assert result.groups == [[0]]

    def test_identical_points_form_one_group(self, strategy):
        points = [(2.0, 2.0)] * 5
        result = sgb_all(points, eps=0.5, strategy=strategy)
        assert result.group_count == 1
        assert sorted(result.groups[0]) == [0, 1, 2, 3, 4]

    def test_far_points_form_singletons(self, strategy):
        points = [(0, 0), (10, 10), (20, 20), (30, 30)]
        result = sgb_all(points, eps=1.0, strategy=strategy)
        assert result.group_count == 4
        assert result.group_sizes() == [1, 1, 1, 1]

    def test_two_obvious_clusters(self, strategy):
        points = [(0, 0), (0.1, 0.1), (0.2, 0.0), (5, 5), (5.1, 5.2)]
        result = sgb_all(points, eps=1.0, strategy=strategy)
        assert sorted(result.group_sizes(), reverse=True) == [3, 2]

    def test_result_is_partition(self, strategy, small_clustered):
        for overlap in ("JOIN-ANY", "ELIMINATE", "FORM-NEW-GROUP"):
            result = sgb_all(
                small_clustered, eps=0.1, on_overlap=overlap, strategy=strategy
            )
            assert result.is_partition(), overlap

    def test_three_dimensional_points(self, strategy):
        points = [(0, 0, 0), (0.3, 0.3, 0.3), (5, 5, 5), (5.1, 5.1, 4.9)]
        result = sgb_all(points, eps=1.0, strategy=strategy)
        assert sorted(result.group_sizes(), reverse=True) == [2, 2]


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("metric", ["L2", "LINF"])
class TestCliqueInvariant:
    """Every output group must be a clique under the similarity predicate."""

    def test_all_members_pairwise_within_eps(self, strategy, metric, small_clustered):
        eps = 0.08
        result = sgb_all(
            small_clustered, eps=eps, metric=metric, on_overlap="JOIN-ANY", strategy=strategy
        )
        dist = euclidean if metric == "L2" else chebyshev
        for members in result.groups:
            coords = [small_clustered[i] for i in members]
            for i in range(len(coords)):
                for j in range(i + 1, len(coords)):
                    assert dist(coords[i], coords[j]) <= eps + 1e-9

    def test_clique_invariant_after_eliminate(self, strategy, metric, small_clustered):
        eps = 0.08
        result = sgb_all(
            small_clustered, eps=eps, metric=metric, on_overlap="ELIMINATE", strategy=strategy
        )
        dist = euclidean if metric == "L2" else chebyshev
        for members in result.groups:
            coords = [small_clustered[i] for i in members]
            for i in range(len(coords)):
                for j in range(i + 1, len(coords)):
                    assert dist(coords[i], coords[j]) <= eps + 1e-9


class TestOverlapSemantics:
    def test_join_any_keeps_every_point(self, fig2_points):
        result = sgb_all(fig2_points, eps=3, metric="LINF", on_overlap="JOIN-ANY")
        assert sorted(result.group_sizes(), reverse=True) == [3, 2]
        assert result.eliminated == []

    def test_eliminate_drops_overlapping_point(self, fig2_points):
        result = sgb_all(fig2_points, eps=3, metric="LINF", on_overlap="ELIMINATE")
        assert sorted(result.group_sizes(), reverse=True) == [2, 2]
        assert result.eliminated == [4]

    def test_form_new_group_creates_dedicated_group(self, fig2_points):
        result = sgb_all(fig2_points, eps=3, metric="LINF", on_overlap="FORM-NEW-GROUP")
        assert sorted(result.group_sizes(), reverse=True) == [2, 2, 1]
        # The overlapping point a5 (index 4) sits alone in the new group.
        singleton = [g for g in result.groups if len(g) == 1]
        assert singleton == [[4]]

    def test_join_any_is_deterministic_for_fixed_seed(self, small_clustered):
        a = sgb_all(small_clustered, eps=0.1, on_overlap="JOIN-ANY", seed=42)
        b = sgb_all(small_clustered, eps=0.1, on_overlap="JOIN-ANY", seed=42)
        assert a.groups == b.groups

    def test_join_any_seed_changes_arbitration(self, small_clustered):
        a = sgb_all(small_clustered, eps=0.12, on_overlap="JOIN-ANY", seed=1)
        b = sgb_all(small_clustered, eps=0.12, on_overlap="JOIN-ANY", seed=2)
        # The partitions may coincide by chance, but group contents usually differ;
        # at minimum both must remain valid partitions of the same input.
        assert a.is_partition() and b.is_partition()
        assert len(a.points) == len(b.points)

    def test_eliminate_never_returns_eliminated_point_in_groups(self, small_clustered):
        result = sgb_all(small_clustered, eps=0.15, on_overlap="ELIMINATE")
        grouped = {i for g in result.groups for i in g}
        assert grouped.isdisjoint(result.eliminated)

    def test_form_new_group_eliminates_nothing(self, small_clustered):
        result = sgb_all(small_clustered, eps=0.15, on_overlap="FORM-NEW-GROUP")
        assert result.eliminated == []
        assert result.is_partition()


class TestStrategyConsistency:
    """All-Pairs, Bounds-Checking, and Index must agree for deterministic semantics."""

    @pytest.mark.parametrize("metric", ["L2", "LINF"])
    def test_eliminate_identical_across_strategies(self, metric, small_clustered):
        results = [
            sgb_all(small_clustered, eps=0.1, metric=metric, on_overlap="ELIMINATE", strategy=s)
            for s in STRATEGIES
        ]
        canonical = [sorted(map(tuple, r.groups)) for r in results]
        assert canonical[0] == canonical[1] == canonical[2]
        assert results[0].eliminated == results[1].eliminated == results[2].eliminated

    @pytest.mark.parametrize("metric", ["L2", "LINF"])
    def test_form_new_group_identical_across_strategies(self, metric, small_clustered):
        results = [
            sgb_all(
                small_clustered, eps=0.1, metric=metric, on_overlap="FORM-NEW-GROUP", strategy=s
            )
            for s in STRATEGIES
        ]
        canonical = [sorted(map(tuple, r.groups)) for r in results]
        assert canonical[0] == canonical[1] == canonical[2]

    def test_join_any_group_count_close_across_strategies(self, small_clustered):
        counts = [
            sgb_all(small_clustered, eps=0.1, on_overlap="JOIN-ANY", strategy=s).group_count
            for s in STRATEGIES
        ]
        # JOIN-ANY is non-deterministic across candidate orderings, but the
        # number of groups should be in the same ballpark.
        assert max(counts) - min(counts) <= max(2, int(0.1 * max(counts)))


class TestIncrementalInterface:
    def test_add_then_finalize_matches_batch(self, small_clustered):
        grouper = SGBAllGrouper(eps=0.1, on_overlap="ELIMINATE")
        for p in small_clustered:
            grouper.add(p)
        incremental = grouper.finalize()
        batch = sgb_all(small_clustered, eps=0.1, on_overlap="ELIMINATE")
        assert sorted(map(tuple, incremental.groups)) == sorted(map(tuple, batch.groups))

    def test_group_count_property_grows(self):
        grouper = SGBAllGrouper(eps=0.5)
        grouper.add((0, 0))
        assert grouper.group_count == 1
        grouper.add((10, 10))
        assert grouper.group_count == 2
        grouper.add((10.1, 10.1))
        assert grouper.group_count == 2

    def test_invalid_eps_rejected(self):
        with pytest.raises(InvalidParameterError):
            SGBAllGrouper(eps=0.0)

    def test_invalid_overlap_rejected(self):
        with pytest.raises(InvalidParameterError):
            SGBAllGrouper(eps=1.0, on_overlap="bogus")


class TestMetricBehaviour:
    def test_linf_groups_are_supersets_of_l2_groups_pointwise(self):
        """At the same eps, LINF admits at least as much as L2 for pairs."""
        points = [(0, 0), (0.9, 0.9)]  # L2 distance ~1.27, LINF distance 0.9
        linf = sgb_all(points, eps=1.0, metric="LINF")
        l2 = sgb_all(points, eps=1.0, metric="L2")
        assert linf.group_count == 1
        assert l2.group_count == 2

    def test_l2_false_positive_region_handled_by_hull_test(self):
        # Three points that pass the LINF rectangle filter but where the L2
        # clique constraint must split them.
        points = [(0.0, 0.0), (0.9, 0.9), (0.9, -0.9)]
        result = sgb_all(points, eps=1.0, metric="L2", strategy="index")
        # (0.9,0.9) and (0.9,-0.9) are 1.8 apart in L2 -> cannot share a group
        # with both; origin is > 1.0 away from both corners as well (1.27).
        assert result.group_count == 3
