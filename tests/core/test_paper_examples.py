"""Worked examples lifted from the paper's figures (Figures 1, 2, 4).

These tests pin the operator semantics to the exact scenarios the paper uses
to explain them.
"""

import pytest

from repro.core.api import sgb_all, sgb_any


class TestFigure1:
    """Figure 1: the same points grouped under distance-to-all vs distance-to-any."""

    # Points a-e form a clique within LINF distance 3; f, g form a second
    # clique sharing c; h extends the chain for the ANY case.
    POINTS_A = {
        "a": (1.0, 5.0),
        "b": (2.0, 4.0),
        "c": (3.0, 3.0),
        "d": (2.0, 2.0),
        "e": (1.0, 3.0),
        "f": (5.0, 2.0),
        "g": (6.0, 1.0),
    }

    def test_distance_to_all_forms_clique_groups(self):
        names = list(self.POINTS_A)
        points = [self.POINTS_A[n] for n in names]
        result = sgb_all(points, eps=3, metric="LINF", on_overlap="JOIN-ANY", seed=0)
        # a-e are pairwise within 3; f and g attach to c but not to a/b/d/e,
        # so they end up in a separate group.
        sizes = sorted(result.group_sizes(), reverse=True)
        assert sizes[0] == 5
        assert sum(sizes) == 7

    def test_distance_to_any_merges_into_one_group(self):
        points = list(self.POINTS_A.values()) + [(7.0, 2.0)]  # h
        result = sgb_any(points, eps=3, metric="LINF")
        assert result.group_sizes() == [len(points)]


class TestFigure2Example1:
    """Figure 2 / Example 1: the three ON-OVERLAP semantics of SGB-All."""

    def test_join_any_output(self, fig2_points):
        result = sgb_all(fig2_points, eps=3, metric="LINF", on_overlap="JOIN-ANY")
        assert sorted(result.group_sizes(), reverse=True) == [3, 2]

    def test_eliminate_output(self, fig2_points):
        result = sgb_all(fig2_points, eps=3, metric="LINF", on_overlap="ELIMINATE")
        assert sorted(result.group_sizes(), reverse=True) == [2, 2]

    def test_form_new_group_output(self, fig2_points):
        result = sgb_all(fig2_points, eps=3, metric="LINF", on_overlap="FORM-NEW-GROUP")
        assert sorted(result.group_sizes(), reverse=True) == [2, 2, 1]

    def test_example2_sgb_any_output(self, fig2_points):
        result = sgb_any(fig2_points, eps=3, metric="L2")
        assert result.group_sizes() == [5]

    def test_intermediate_state_after_four_points(self, fig2_points):
        """Before a5 arrives the state is exactly g1{a1,a2}, g2{a3,a4}."""
        result = sgb_all(fig2_points[:4], eps=3, metric="LINF", on_overlap="JOIN-ANY")
        assert sorted(sorted(g) for g in result.groups) == [[0, 1], [2, 3]]


class TestFigure4Scenario:
    """Figure 4: point x overlaps groups it can fully join and groups it only touches."""

    @pytest.fixture
    def scenario(self):
        # Four pre-existing clusters (eps = 4, LINF), then x arrives.
        # g1 = {a1, a2, a3}: x is within 4 of a3 only -> overlap group.
        # g2 = {b1, b2} and g3 = {c1, c2, c3}: x within 4 of all -> candidates.
        # g4 = {d1, d2}: far away.
        points = [
            (0.0, 10.0), (1.0, 9.0), (3.0, 7.0),      # a1 a2 a3
            (8.0, 9.0), (9.0, 8.0),                   # b1 b2
            (7.0, 3.0), (8.0, 2.0), (9.0, 3.0),       # c1 c2 c3
            (16.0, 2.0), (17.0, 1.0),                 # d1 d2
            (6.0, 6.0),                               # x
        ]
        return points

    def test_eliminate_drops_x_and_touched_members(self, scenario):
        result = sgb_all(scenario, eps=4, metric="LINF", on_overlap="ELIMINATE")
        # x (index 10) is dropped because it qualifies for two groups, and a3
        # (index 2) is dropped because it overlaps x without its whole group.
        assert 10 in result.eliminated
        assert 2 in result.eliminated
        # d1, d2 remain untouched.
        assert any(sorted(g) == [8, 9] for g in result.groups)

    def test_join_any_places_x_in_exactly_one_candidate(self, scenario):
        result = sgb_all(scenario, eps=4, metric="LINF", on_overlap="JOIN-ANY", seed=3)
        assignment = result.assignment()
        assert 10 in assignment
        group_of_x = sorted(result.groups[assignment[10]])
        # x joined either the b-group or the c-group.
        assert set(group_of_x) - {10} in ({3, 4}, {5, 6, 7})

    def test_form_new_group_isolates_overlap_set(self, scenario):
        result = sgb_all(scenario, eps=4, metric="LINF", on_overlap="FORM-NEW-GROUP")
        assert result.is_partition()
        # x and a3 leave their original groups; they form new group(s) together
        # or separately depending on their mutual distance (3 <= 4 -> together).
        new_groups = [g for g in result.groups if set(g) & {2, 10}]
        flattened = {i for g in new_groups for i in g}
        assert flattened == {2, 10}
