"""Tests for the Group bookkeeping used by SGB-All."""

import pytest

from repro.core.distance import Metric
from repro.core.groups import Group
from repro.core.predicates import SimilarityPredicate


@pytest.fixture
def linf_predicate():
    return SimilarityPredicate(Metric.LINF, 2.0)


@pytest.fixture
def l2_predicate():
    return SimilarityPredicate(Metric.L2, 2.0)


class TestGroupMembership:
    def test_group_starts_with_single_member(self):
        group = Group(gid=0, eps=2.0, index=7, point=(1.0, 1.0))
        assert len(group) == 1
        assert group.indices == [7]
        assert group.points == [(1.0, 1.0)]

    def test_add_tracks_indices_and_shrinks_rect(self):
        group = Group(0, 2.0, 0, (0.0, 0.0))
        area_before = group.eps_rect.rect.area()
        group.add(1, (1.0, 1.0))
        assert group.indices == [0, 1]
        assert group.eps_rect.rect.area() < area_before

    def test_rect_contains_filters_far_points(self):
        group = Group(0, 1.0, 0, (0.0, 0.0))
        assert group.rect_contains((0.5, 0.5))
        assert not group.rect_contains((3.0, 0.0))

    def test_all_within_and_any_within(self, linf_predicate):
        group = Group(0, 2.0, 0, (0.0, 0.0))
        group.add(1, (1.5, 0.0))
        assert group.all_within((0.5, 0.5), linf_predicate)
        assert not group.all_within((-1.0, 0.0), linf_predicate)  # 2.5 from (1.5, 0)
        assert group.any_within((-1.0, 0.0), linf_predicate)
        assert not group.any_within((10.0, 10.0), linf_predicate)

    def test_members_within_returns_indices(self, linf_predicate):
        group = Group(0, 2.0, 10, (0.0, 0.0))
        group.add(11, (5.0, 5.0))
        assert group.members_within((1.0, 1.0), linf_predicate) == [10]

    def test_remove_indices_rebuilds_rectangle(self):
        group = Group(0, 2.0, 0, (0.0, 0.0))
        group.add(1, (1.5, 1.5))
        shrunk_area = group.eps_rect.rect.area()
        removed = group.remove_indices([1])
        assert removed == [(1, (1.5, 1.5))]
        assert group.indices == [0]
        # After removal the rectangle is rebuilt around the remaining member.
        assert group.eps_rect.rect.area() > shrunk_area

    def test_remove_all_members_leaves_empty_group(self):
        group = Group(0, 1.0, 0, (0.0, 0.0))
        group.remove_indices([0])
        assert len(group) == 0


class TestGroupHull:
    def test_hull_is_cached_and_invalidated(self):
        group = Group(0, 5.0, 0, (0.0, 0.0))
        group.add(1, (1.0, 0.0))
        group.add(2, (0.0, 1.0))
        first = group.hull()
        assert set(first) == {(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)}
        group.add(3, (1.0, 1.0))
        assert len(group.hull()) == 4

    def test_hull_test_accepts_interior_point(self, l2_predicate):
        group = Group(0, 2.0, 0, (0.0, 0.0))
        group.add(1, (1.0, 0.0))
        group.add(2, (0.0, 1.0))
        assert group.passes_hull_test((0.3, 0.3), l2_predicate)

    def test_hull_test_rejects_l2_false_positive(self, l2_predicate):
        # The classic corner case of Figure 7b: inside the LINF rectangle but
        # outside the L2 circle of an existing member.
        group = Group(0, 2.0, 0, (0.0, 0.0))
        corner = (1.9, 1.9)  # LINF distance 1.9 <= 2 but L2 distance ~2.69 > 2
        assert group.rect_contains(corner)
        assert not group.passes_hull_test(corner, l2_predicate)

    def test_hull_test_falls_back_for_linf(self):
        predicate = SimilarityPredicate(Metric.LINF, 2.0)
        group = Group(0, 2.0, 0, (0.0, 0.0))
        assert group.passes_hull_test((1.9, 1.9), predicate)
