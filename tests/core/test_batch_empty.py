"""Regression: a zero-point ``add_batch`` is a strict no-op on both groupers.

Streaming flushes routinely produce empty micro-batches at epoch boundaries,
so the degenerate batch must not dirty the lazy-index bookkeeping, dispatch
into the PointSet backends, or touch the Union-Find / group state.
"""

from __future__ import annotations

import pytest

from repro.core.pointset import HAVE_NUMPY, PointSet
from repro.core.sgb_all import SGBAllGrouper
from repro.core.sgb_any import SGBAnyGrouper

EMPTY_BATCHES = [[], ()]
if HAVE_NUMPY:
    import numpy as np

    EMPTY_BATCHES.append(np.empty((0, 2)))


@pytest.mark.parametrize("empty", EMPTY_BATCHES, ids=lambda b: type(b).__name__)
class TestEmptyBatchIsANoop:
    def test_sgb_any_state_untouched(self, empty):
        grouper = SGBAnyGrouper(eps=1.0)
        grouper.add_batch([(0.0, 0.0), (0.2, 0.1), (5.0, 5.0)])
        before = (
            list(grouper._points),
            list(grouper._indices),
            grouper._indexed_upto,
            grouper.group_count,
        )
        grouper.add_batch(empty)
        after = (
            list(grouper._points),
            list(grouper._indices),
            grouper._indexed_upto,
            grouper.group_count,
        )
        assert after == before
        assert grouper.finalize().groups == [[0, 1], [2]]

    def test_sgb_any_empty_batch_on_fresh_grouper(self, empty):
        grouper = SGBAnyGrouper(eps=1.0)
        grouper.add_batch(empty)
        assert grouper.group_count == 0
        assert grouper.finalize().groups == []

    def test_sgb_all_state_untouched(self, empty):
        grouper = SGBAllGrouper(eps=1.0)
        grouper.add_batch([(0.0, 0.0), (0.2, 0.1), (5.0, 5.0)])
        before = (list(grouper._points), grouper.group_count, grouper._next_gid)
        grouper.add_batch(empty)
        assert (list(grouper._points), grouper.group_count, grouper._next_gid) == before

    def test_sgb_all_empty_batch_on_fresh_grouper(self, empty):
        grouper = SGBAllGrouper(eps=1.0)
        grouper.add_batch(empty)
        assert grouper.finalize().groups == []

    def test_no_backend_dispatch_happens(self, empty, monkeypatch):
        """The degenerate batch must return before any PointSet normalisation."""

        def boom(*args, **kwargs):  # pragma: no cover - should never run
            raise AssertionError("PointSet.from_any dispatched on an empty batch")

        monkeypatch.setattr(PointSet, "from_any", staticmethod(boom))
        SGBAnyGrouper(eps=1.0).add_batch(empty)
        SGBAllGrouper(eps=1.0).add_batch(empty)


class TestEmptyBatchInterleaving:
    def test_empty_batches_between_real_ones_do_not_change_results(self):
        reference = SGBAnyGrouper(eps=1.0)
        reference.add_batch([(0.0, 0.0), (0.3, 0.2), (4.0, 4.0), (4.2, 4.1)])
        mixed = SGBAnyGrouper(eps=1.0)
        mixed.add_batch([])
        mixed.add_batch([(0.0, 0.0), (0.3, 0.2)])
        mixed.add_batch(())
        mixed.add_batch([(4.0, 4.0), (4.2, 4.1)])
        mixed.add_batch([])
        assert mixed.finalize().groups == reference.finalize().groups
