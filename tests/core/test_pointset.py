"""Tests for the columnar :class:`~repro.core.pointset.PointSet` subsystem.

Every batched primitive is checked against a brute-force reference on both
backends, and the two backends are cross-checked against each other.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.core.distance import Metric, get_distance_function
from repro.core.pointset import HAVE_NUMPY, PointSet
from repro.core.rectangle import Rect
from repro.exceptions import DimensionalityError, InvalidParameterError

BACKENDS = ["python"] + (["numpy"] if HAVE_NUMPY else [])


def _random_points(n, dims=2, seed=0, low=0.0, high=10.0):
    rng = random.Random(seed)
    return [tuple(rng.uniform(low, high) for _ in range(dims)) for _ in range(n)]


@pytest.mark.parametrize("backend", BACKENDS)
class TestConstruction:
    def test_from_any_roundtrips_tuples(self, backend):
        pts = _random_points(50, seed=1)
        ps = PointSet.from_any(pts, backend=backend)
        assert len(ps) == 50
        assert ps.dims == 2
        assert ps.to_tuples() == pts
        assert ps.point(7) == pts[7]
        assert ps[7] == pts[7]
        assert list(ps) == pts
        assert ps.backend == backend

    def test_from_any_is_idempotent(self, backend):
        ps = PointSet.from_any(_random_points(5), backend=backend)
        assert PointSet.from_any(ps) is ps

    def test_from_any_converts_between_backends(self, backend):
        other = "numpy" if backend == "python" else "python"
        if other == "numpy" and not HAVE_NUMPY:
            pytest.skip("numpy unavailable")
        pts = _random_points(10, seed=3)
        ps = PointSet.from_any(pts, backend=backend)
        converted = PointSet.from_any(ps, backend=other)
        assert converted.backend == other
        assert converted.to_tuples() == pts

    def test_from_columns(self, backend):
        cols = [[0.0, 1.0, 2.0], [5.0, 6.0, 7.0]]
        ps = PointSet.from_columns(cols, backend=backend)
        assert ps.to_tuples() == [(0.0, 5.0), (1.0, 6.0), (2.0, 7.0)]

    def test_empty_set(self, backend):
        ps = PointSet.from_any([], backend=backend)
        assert len(ps) == 0
        assert ps.to_tuples() == []
        with pytest.raises(InvalidParameterError):
            ps.bbox()
        # Backend-equivalent empty behaviour for the batched primitives.
        assert ps.verify_within((1.0, 2.0), 0.5) == []
        assert list(ps.window_mask(Rect((0.0, 0.0), (1.0, 1.0)))) == []
        assert list(ps.pairwise_within(0.5)) == []

    def test_rejects_mixed_dimensionality(self, backend):
        with pytest.raises(DimensionalityError):
            PointSet.from_any([(1.0, 2.0), (1.0, 2.0, 3.0)], backend=backend)

    def test_rejects_non_finite_coordinates(self, backend):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(InvalidParameterError):
                PointSet.from_any([(0.0, 1.0), (bad, 2.0)], backend=backend)

    def test_rejects_zero_dimensional_points(self, backend):
        with pytest.raises(InvalidParameterError):
            PointSet.from_any([()], backend=backend)


@pytest.mark.parametrize("backend", BACKENDS)
class TestPrimitives:
    def test_bbox_matches_from_points(self, backend):
        pts = _random_points(40, seed=5)
        ps = PointSet.from_any(pts, backend=backend)
        assert ps.bbox() == Rect.from_points(pts)

    def test_window_mask_matches_contains(self, backend):
        pts = _random_points(60, seed=6)
        ps = PointSet.from_any(pts, backend=backend)
        window = Rect((2.0, 3.0), (7.0, 8.0))
        mask = list(ps.window_mask(window))
        assert mask == [window.contains_point(p) for p in pts]

    @pytest.mark.parametrize("metric", [Metric.L2, Metric.LINF, Metric.L1])
    def test_verify_within_matches_brute_force(self, backend, metric):
        pts = _random_points(80, seed=7)
        ps = PointSet.from_any(pts, backend=backend)
        probe = (5.0, 5.0)
        eps = 2.0
        dist = get_distance_function(metric)
        expected = [i for i, p in enumerate(pts) if dist(probe, p) <= eps]
        assert sorted(ps.verify_within(probe, eps, metric)) == expected

    @pytest.mark.parametrize("metric", [Metric.L2, Metric.LINF, Metric.L1])
    def test_verify_within_respects_candidate_subset(self, backend, metric):
        pts = _random_points(80, seed=8)
        ps = PointSet.from_any(pts, backend=backend)
        probe = (5.0, 5.0)
        eps = 2.5
        candidates = list(range(0, 80, 3))
        dist = get_distance_function(metric)
        expected = [i for i in candidates if dist(probe, pts[i]) <= eps]
        assert sorted(ps.verify_within(probe, eps, metric, candidates)) == expected
        assert ps.verify_within(probe, eps, metric, []) == []

    @pytest.mark.parametrize("metric", [Metric.L2, Metric.LINF, Metric.L1])
    # dims=10 exercises the high-dimensional brute-force fallback (the
    # eps-grid sweep would enumerate 3^d neighbour offsets).
    @pytest.mark.parametrize("dims", [1, 2, 3, 10])
    def test_pairwise_within_matches_brute_force(self, backend, metric, dims):
        pts = _random_points(120, dims=dims, seed=9)
        ps = PointSet.from_any(pts, backend=backend)
        eps = 1.2
        dist = get_distance_function(metric)
        expected = {
            (i, j)
            for i in range(len(pts))
            for j in range(i + 1, len(pts))
            if dist(pts[i], pts[j]) <= eps
        }
        got = {(min(i, j), max(i, j)) for i, j in ps.pairwise_within(eps, metric)}
        assert got == expected

    def test_pairwise_within_handles_negative_coordinates(self, backend):
        pts = _random_points(60, seed=10, low=-8.0, high=8.0)
        ps = PointSet.from_any(pts, backend=backend)
        eps = 1.5
        expected = {
            (i, j)
            for i in range(len(pts))
            for j in range(i + 1, len(pts))
            if math.dist(pts[i], pts[j]) <= eps
        }
        got = {(min(i, j), max(i, j)) for i, j in ps.pairwise_within(eps, "L2")}
        assert got == expected

    def test_pairwise_within_rejects_bad_eps(self, backend):
        ps = PointSet.from_any(_random_points(4), backend=backend)
        with pytest.raises(InvalidParameterError):
            list(ps.pairwise_within(0.0))

    def test_backends_agree_on_pairwise(self, backend):
        if not HAVE_NUMPY:
            pytest.skip("needs both backends")
        pts = _random_points(100, seed=11)
        sets = {
            b: PointSet.from_any(pts, backend=b) for b in ("python", "numpy")
        }
        results = {
            b: {(min(i, j), max(i, j)) for i, j in s.pairwise_within(0.9, "L2")}
            for b, s in sets.items()
        }
        assert results["python"] == results["numpy"]


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")
class TestNumpyZeroCopy:
    def test_float64_array_is_adopted_zero_copy(self):
        import numpy as np

        arr = np.random.default_rng(0).uniform(0, 10, size=(30, 2))
        ps = PointSet.from_any(arr)
        assert ps.backend == "numpy"
        assert ps.array is arr or ps.array.base is arr

    def test_array_with_nan_is_rejected(self):
        import numpy as np

        arr = np.ones((4, 2))
        arr[2, 1] = np.nan
        with pytest.raises(InvalidParameterError):
            PointSet.from_any(arr)

    def test_one_dimensional_array_is_rejected(self):
        import numpy as np

        with pytest.raises(DimensionalityError):
            PointSet.from_any(np.ones(5))

    def test_float32_array_is_widened(self):
        import numpy as np

        arr = np.ones((3, 2), dtype=np.float32)
        ps = PointSet.from_any(arr)
        assert ps.to_tuples() == [(1.0, 1.0)] * 3
