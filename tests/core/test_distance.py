"""Tests for the metric layer (repro.core.distance)."""

import math
import random

import pytest

from repro.core.distance import (
    Metric,
    chebyshev,
    euclidean,
    get_distance_function,
    manhattan,
    minkowski,
    resolve_metric,
    squared_euclidean,
)
from repro.exceptions import DimensionalityError, InvalidParameterError


class TestEuclidean:
    def test_classic_345_triangle(self):
        assert euclidean((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_zero_distance_to_self(self):
        assert euclidean((1.5, -2.5), (1.5, -2.5)) == 0.0

    def test_symmetry(self):
        assert euclidean((1, 2), (4, 6)) == euclidean((4, 6), (1, 2))

    def test_three_dimensions(self):
        assert euclidean((0, 0, 0), (1, 2, 2)) == pytest.approx(3.0)

    def test_high_dimensional(self):
        p = tuple(range(10))
        q = tuple(c + 1 for c in p)
        assert euclidean(p, q) == pytest.approx(math.sqrt(10))

    def test_dimension_mismatch_raises(self):
        with pytest.raises(DimensionalityError):
            euclidean((0, 0), (0, 0, 0))

    def test_squared_euclidean_matches_square(self):
        assert squared_euclidean((0, 0), (3, 4)) == pytest.approx(25.0)


class TestChebyshev:
    def test_takes_maximum_coordinate_difference(self):
        assert chebyshev((0, 0), (3, 4)) == 4.0

    def test_negative_coordinates(self):
        assert chebyshev((-1, -1), (2, 0)) == 3.0

    def test_equal_points(self):
        assert chebyshev((7, 7), (7, 7)) == 0.0

    def test_dimension_mismatch_raises(self):
        with pytest.raises(DimensionalityError):
            chebyshev((0,), (0, 1))

    def test_always_at_most_euclidean(self):
        points = [((0.1, 0.9), (0.4, 0.2)), ((5, 5), (1, 2)), ((0, 0), (1, 1))]
        for p, q in points:
            assert chebyshev(p, q) <= euclidean(p, q) + 1e-12


class TestManhattanAndMinkowski:
    def test_manhattan_sums_coordinates(self):
        assert manhattan((0, 0), (3, 4)) == 7.0

    def test_minkowski_order_one_is_manhattan(self):
        assert minkowski((1, 2), (4, 6), 1) == pytest.approx(manhattan((1, 2), (4, 6)))

    def test_minkowski_order_two_is_euclidean(self):
        assert minkowski((1, 2), (4, 6), 2) == pytest.approx(euclidean((1, 2), (4, 6)))

    def test_minkowski_infinite_order_is_chebyshev(self):
        assert minkowski((1, 2), (4, 6), math.inf) == chebyshev((1, 2), (4, 6))

    def test_minkowski_rejects_order_below_one(self):
        with pytest.raises(InvalidParameterError):
            minkowski((0, 0), (1, 1), 0.5)


class TestMetricResolution:
    def test_enum_members_resolve_to_themselves(self):
        assert resolve_metric(Metric.L2) is Metric.L2
        assert resolve_metric(Metric.LINF) is Metric.LINF

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("L2", Metric.L2),
            ("l2", Metric.L2),
            ("euclidean", Metric.L2),
            ("ltwo", Metric.L2),
            ("LINF", Metric.LINF),
            ("chebyshev", Metric.LINF),
            ("lone", Metric.L1),
            ("manhattan", Metric.L1),
        ],
    )
    def test_string_aliases(self, name, expected):
        assert resolve_metric(name) is expected

    def test_unknown_name_raises(self):
        with pytest.raises(InvalidParameterError):
            resolve_metric("hamming")

    def test_get_distance_function_returns_callable(self):
        fn = get_distance_function("LINF")
        assert fn((0, 0), (2, 5)) == 5.0

    def test_metric_distance_method(self):
        assert Metric.L2.distance((0, 0), (3, 4)) == pytest.approx(5.0)
        assert Metric.L1.distance((0, 0), (3, 4)) == pytest.approx(7.0)


class TestDistancesMany:
    """The vectorised one-against-many path must match the scalar loops exactly."""

    @pytest.mark.parametrize("metric", [Metric.L2, Metric.LINF, Metric.L1])
    @pytest.mark.parametrize("dims", [1, 2, 3, 8, 12, 32])
    def test_matches_scalar_distance_bit_for_bit(self, metric, dims):
        from repro.core.distance import distances_many

        rng = random.Random(dims)
        probe = tuple(rng.uniform(-5, 5) for _ in range(dims))
        candidates = [
            tuple(rng.uniform(-5, 5) for _ in range(dims)) for _ in range(40)
        ]
        got = distances_many(probe, candidates, metric)
        expected = [metric.distance(probe, q) for q in candidates]
        assert got == expected  # exact equality, not approx

    def test_empty_candidates(self):
        from repro.core.distance import distances_many

        assert distances_many((1.0, 2.0), [], "L2") == []

    def test_dimension_mismatch_raises(self):
        from repro.core.distance import distances_many
        from repro.exceptions import DimensionalityError

        with pytest.raises(DimensionalityError):
            distances_many((1.0,), [(1.0, 2.0)], "L2")
