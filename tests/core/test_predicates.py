"""Tests for the similarity predicate (paper Definition 2)."""

import pytest

from repro.core.distance import Metric
from repro.core.predicates import SimilarityPredicate
from repro.exceptions import InvalidParameterError


class TestConstruction:
    def test_create_from_string_metric(self):
        predicate = SimilarityPredicate.create("LINF", 2.0)
        assert predicate.metric is Metric.LINF
        assert predicate.eps == 2.0

    def test_zero_threshold_rejected(self):
        with pytest.raises(InvalidParameterError):
            SimilarityPredicate(Metric.L2, 0.0)

    def test_negative_threshold_rejected(self):
        with pytest.raises(InvalidParameterError):
            SimilarityPredicate(Metric.L2, -1.0)


class TestEvaluation:
    def test_similar_within_threshold(self):
        predicate = SimilarityPredicate(Metric.L2, 5.0)
        assert predicate.similar((0, 0), (3, 4)) is True

    def test_boundary_is_inclusive(self):
        predicate = SimilarityPredicate(Metric.L2, 5.0)
        assert predicate.similar((0, 0), (3, 4))  # exactly 5
        predicate_linf = SimilarityPredicate(Metric.LINF, 3.0)
        assert predicate_linf.similar((0, 0), (3, 0))

    def test_not_similar_outside_threshold(self):
        predicate = SimilarityPredicate(Metric.L2, 4.9)
        assert predicate.similar((0, 0), (3, 4)) is False

    def test_l2_and_linf_disagree_on_diagonal(self):
        # Diagonal distance: LINF = 1, L2 = sqrt(2).
        l2 = SimilarityPredicate(Metric.L2, 1.2)
        linf = SimilarityPredicate(Metric.LINF, 1.2)
        assert not l2.similar((0, 0), (1, 1))
        assert linf.similar((0, 0), (1, 1))

    def test_callable_protocol(self):
        predicate = SimilarityPredicate(Metric.LINF, 1.0)
        assert predicate((0, 0), (1, 1)) is True

    def test_distance_method_reports_metric_distance(self):
        predicate = SimilarityPredicate(Metric.L2, 1.0)
        assert predicate.distance((0, 0), (3, 4)) == pytest.approx(5.0)


class TestQuantifiedForms:
    def test_similar_to_all(self):
        predicate = SimilarityPredicate(Metric.LINF, 2.0)
        group = [(0, 0), (1, 1), (2, 0)]
        assert predicate.similar_to_all((1, 0), group)
        assert not predicate.similar_to_all((4, 0), group)

    def test_similar_to_any(self):
        predicate = SimilarityPredicate(Metric.LINF, 2.0)
        group = [(0, 0), (10, 10)]
        assert predicate.similar_to_any((9, 9), group)
        assert not predicate.similar_to_any((5, 5), group)

    def test_empty_group_edge_cases(self):
        predicate = SimilarityPredicate(Metric.L2, 1.0)
        # all() over empty is vacuously true; any() is false.
        assert predicate.similar_to_all((0, 0), []) is True
        assert predicate.similar_to_any((0, 0), []) is False
