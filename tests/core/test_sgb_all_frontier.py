"""Frontier-based batch SGB-All: parity with the per-point reference paths.

The frontier path pre-computes the whole batch's eps-adjacency in one sweep
and verifies each point against entire candidate groups at once.  It only
engages where the per-point candidate decision is a pure adjacency function
(ALL_PAIRS always; LINF any dims; L2 in 2-d where the hull test is exact) —
everywhere else ``add_batch`` silently keeps the legacy per-point loop.
Either way the results must be bit-identical to ``frontier=False`` and to
the scalar ``batch=False`` path: same groups, same eliminated set, same
point order.
"""

from __future__ import annotations

import random

import pytest

from repro.core.api import sgb_all
from repro.core.pointset import HAVE_NUMPY

BACKENDS = ["python"] + (["numpy"] if HAVE_NUMPY else [])
OVERLAPS = ["JOIN-ANY", "ELIMINATE", "FORM-NEW-GROUP"]
STRATEGIES = ["all-pairs", "bounds-checking", "index"]


def _clustered(seed: int, n: int = 120, dims: int = 2):
    rng = random.Random(seed)
    centers = [
        tuple(rng.uniform(0, 10) for _ in range(dims)) for _ in range(5)
    ]
    return [
        tuple(c + rng.gauss(0, 0.35) for c in centers[rng.randrange(len(centers))])
        for _ in range(n)
    ]


def _assert_parity(points, **kwargs):
    frontier = sgb_all(points, batch=True, frontier=True, **kwargs)
    legacy = sgb_all(points, batch=True, frontier=False, **kwargs)
    scalar = sgb_all(points, batch=False, **kwargs)
    for reference in (legacy, scalar):
        assert frontier.groups == reference.groups
        assert frontier.eliminated == reference.eliminated
        assert frontier.points == reference.points


class TestFrontierParity:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("on_overlap", OVERLAPS)
    @pytest.mark.parametrize("seed", [3, 17])
    def test_l2_2d(self, strategy, on_overlap, seed):
        _assert_parity(
            _clustered(seed), eps=0.5, metric="L2",
            on_overlap=on_overlap, strategy=strategy,
        )

    @pytest.mark.parametrize("on_overlap", OVERLAPS)
    @pytest.mark.parametrize("dims", [2, 3])
    def test_linf_any_dims(self, on_overlap, dims):
        _assert_parity(
            _clustered(29, dims=dims), eps=0.5, metric="LINF",
            on_overlap=on_overlap, strategy="index",
        )

    @pytest.mark.parametrize("metric", ["L1", "L2"])
    @pytest.mark.parametrize("on_overlap", OVERLAPS)
    def test_ineligible_configs_fall_back_unchanged(self, metric, on_overlap):
        # L1 (any dims) and L2 beyond 2-d use rectangle filters that accept
        # false positives, so the frontier gate must refuse them on indexed
        # strategies — parity still holds because the per-point loop runs.
        _assert_parity(
            _clustered(41, dims=3), eps=0.6, metric=metric,
            on_overlap=on_overlap, strategy="index",
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backends_agree(self, backend):
        from repro.core.pointset import PointSet

        points = PointSet.from_any(_clustered(53), backend=backend)
        frontier = sgb_all(
            points, eps=0.5, on_overlap="ELIMINATE", batch=True, frontier=True
        )
        scalar = sgb_all(points, eps=0.5, on_overlap="ELIMINATE", batch=False)
        assert frontier.groups == scalar.groups
        assert frontier.eliminated == scalar.eliminated

    def test_dense_single_cluster_all_pairs(self):
        # Everything within eps of everything: one group, zero eliminations,
        # the strongest case for whole-frontier verification.
        rng = random.Random(61)
        points = [(rng.gauss(0, 0.05), rng.gauss(0, 0.05)) for _ in range(80)]
        _assert_parity(points, eps=1.0, on_overlap="JOIN-ANY", strategy="all-pairs")

    def test_consecutive_batches_see_prior_points(self):
        # The adjacency sweep must include edges to points from earlier
        # batches, not just within the incoming batch.
        from repro.core.sgb_all import SGBAllGrouper

        points = _clustered(71, n=90)
        reference = sgb_all(points, eps=0.5, on_overlap="ELIMINATE", batch=False)

        grouper = SGBAllGrouper(eps=0.5, on_overlap="ELIMINATE")
        for start in range(0, len(points), 30):
            grouper.add_batch(points[start:start + 30], frontier=True)
        result = grouper.finalize()
        assert result.groups == reference.groups
        assert result.eliminated == reference.eliminated

    def test_empty_batch_is_a_noop(self):
        from repro.core.sgb_all import SGBAllGrouper

        grouper = SGBAllGrouper(eps=0.5)
        grouper.add_batch([], frontier=True)
        assert grouper.finalize().groups == []
