"""Behavioural tests for the SGB-Any operator (paper Section 7)."""

import pytest

from repro.core.api import sgb_any
from repro.core.distance import chebyshev, euclidean
from repro.core.sgb_any import SGBAnyGrouper, SGBAnyStrategy
from repro.exceptions import InvalidParameterError

STRATEGIES = ["all-pairs", "index"]


class TestStrategyParsing:
    def test_aliases(self):
        assert SGBAnyStrategy.parse("naive") is SGBAnyStrategy.ALL_PAIRS
        assert SGBAnyStrategy.parse("rtree") is SGBAnyStrategy.INDEX

    def test_unknown_raises(self):
        with pytest.raises(InvalidParameterError):
            SGBAnyStrategy.parse("bounds-checking")


@pytest.mark.parametrize("strategy", STRATEGIES)
class TestBasicGrouping:
    def test_empty_input(self, strategy):
        result = sgb_any([], eps=1.0, strategy=strategy)
        assert result.group_count == 0

    def test_single_point(self, strategy):
        result = sgb_any([(3.0, 4.0)], eps=1.0, strategy=strategy)
        assert result.groups == [[0]]

    def test_far_points_stay_separate(self, strategy):
        points = [(0, 0), (10, 0), (20, 0)]
        result = sgb_any(points, eps=1.0, strategy=strategy)
        assert result.group_count == 3

    def test_chain_merges_into_one_group(self, strategy):
        """Transitivity: a-b-c-d chained within eps forms a single group even
        though the endpoints are far apart (the defining difference to SGB-All)."""
        points = [(0, 0), (0.9, 0), (1.8, 0), (2.7, 0), (3.6, 0)]
        result = sgb_any(points, eps=1.0, strategy=strategy)
        assert result.group_count == 1
        assert sorted(result.groups[0]) == [0, 1, 2, 3, 4]

    def test_bridge_point_merges_two_clusters(self, strategy, fig2_points):
        result = sgb_any(fig2_points, eps=3, metric="LINF", strategy=strategy)
        assert result.group_sizes() == [5]

    def test_never_eliminates(self, strategy, small_clustered):
        result = sgb_any(small_clustered, eps=0.1, strategy=strategy)
        assert result.eliminated == []
        assert result.is_partition()

    def test_three_dimensional_points(self, strategy):
        points = [(0, 0, 0), (0.5, 0, 0), (1.0, 0, 0), (9, 9, 9)]
        result = sgb_any(points, eps=0.6, strategy=strategy)
        assert sorted(result.group_sizes(), reverse=True) == [3, 1]


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("metric", ["L2", "LINF"])
class TestConnectivityInvariant:
    def test_groups_are_connected_components(self, strategy, metric, small_clustered):
        """Every group must be exactly an epsilon-connected component."""
        eps = 0.07
        result = sgb_any(small_clustered, eps=eps, metric=metric, strategy=strategy)
        dist = euclidean if metric == "L2" else chebyshev
        labels = result.labels()
        n = len(small_clustered)
        for i in range(n):
            for j in range(i + 1, n):
                if dist(small_clustered[i], small_clustered[j]) <= eps:
                    assert labels[i] == labels[j], (
                        f"points {i} and {j} are within eps but in different groups"
                    )

    def test_each_member_has_a_close_neighbour_in_group(self, strategy, metric, small_clustered):
        eps = 0.07
        result = sgb_any(small_clustered, eps=eps, metric=metric, strategy=strategy)
        dist = euclidean if metric == "L2" else chebyshev
        for members in result.groups:
            if len(members) == 1:
                continue
            for i in members:
                assert any(
                    dist(small_clustered[i], small_clustered[j]) <= eps + 1e-12
                    for j in members
                    if j != i
                )


class TestStrategyConsistency:
    @pytest.mark.parametrize("metric", ["L2", "LINF"])
    def test_all_pairs_and_index_agree(self, metric, small_clustered):
        naive = sgb_any(small_clustered, eps=0.1, metric=metric, strategy="all-pairs")
        indexed = sgb_any(small_clustered, eps=0.1, metric=metric, strategy="index")
        assert sorted(map(tuple, naive.groups)) == sorted(map(tuple, indexed.groups))

    def test_insertion_order_does_not_change_components(self, small_clustered):
        forwards = sgb_any(small_clustered, eps=0.1)
        backwards = sgb_any(list(reversed(small_clustered)), eps=0.1)
        # Compare as sets of frozensets of coordinates (indices differ).
        def as_sets(result, points):
            return {
                frozenset(tuple(points[i]) for i in members) for members in result.groups
            }

        assert as_sets(forwards, small_clustered) == as_sets(
            backwards, list(reversed(small_clustered))
        )


class TestRelationToSGBAll:
    def test_sgb_any_groups_are_coarser_than_sgb_all(self, small_clustered):
        """SGB-Any components are unions of SGB-All cliques: never more groups."""
        from repro.core.api import sgb_all

        eps = 0.1
        any_result = sgb_any(small_clustered, eps=eps)
        all_result = sgb_all(small_clustered, eps=eps, on_overlap="JOIN-ANY")
        assert any_result.group_count <= all_result.group_count

    def test_sgb_all_groups_never_cross_any_components(self, small_clustered):
        from repro.core.api import sgb_all

        eps = 0.1
        any_labels = sgb_any(small_clustered, eps=eps).labels()
        all_result = sgb_all(small_clustered, eps=eps, on_overlap="JOIN-ANY")
        for members in all_result.groups:
            component_labels = {any_labels[i] for i in members}
            assert len(component_labels) == 1


class TestIncrementalInterface:
    def test_incremental_matches_batch(self, small_clustered):
        grouper = SGBAnyGrouper(eps=0.1)
        for p in small_clustered:
            grouper.add(p)
        incremental = grouper.finalize()
        batch = sgb_any(small_clustered, eps=0.1)
        assert sorted(map(tuple, incremental.groups)) == sorted(map(tuple, batch.groups))

    def test_group_count_decreases_on_merge(self):
        grouper = SGBAnyGrouper(eps=1.0)
        grouper.add((0, 0))
        grouper.add((5, 5))
        assert grouper.group_count == 2
        grouper.add((2.5, 2.5))  # not close to either (L2 ~3.5)
        assert grouper.group_count == 3
        grouper.add((1.0, 1.0))  # close to (0,0) group and (2.5,2.5)? L2=1.41 no
        assert grouper.group_count == 4 or grouper.group_count == 3

    def test_merging_bridge(self):
        grouper = SGBAnyGrouper(eps=1.5)
        grouper.add((0, 0))
        grouper.add((3, 0))
        assert grouper.group_count == 2
        grouper.add((1.5, 0))  # bridges both
        assert grouper.group_count == 1

    def test_invalid_eps_rejected(self):
        with pytest.raises(InvalidParameterError):
            SGBAnyGrouper(eps=-1.0)


class TestNeighboursMany:
    """The public batched probe: neighbours among added points, without adding."""

    def test_returns_input_row_indices_within_eps(self):
        grouper = SGBAnyGrouper(eps=1.0)
        grouper.add_batch([(0.0, 0.0), (0.5, 0.0), (5.0, 5.0)])
        hits = grouper.neighbours_many([(0.2, 0.1), (5.1, 5.1), (20.0, 20.0)])
        assert [sorted(h) for h in hits] == [[0, 1], [2], []]
        # Probing must not admit the probe points.
        assert grouper.group_count == 2
        assert grouper.finalize().groups == [[0, 1], [2]]

    def test_matches_scalar_predicate_on_both_strategies(self):
        import random

        rng = random.Random(23)
        points = [(rng.uniform(0, 6), rng.uniform(0, 6)) for _ in range(80)]
        probes = [(rng.uniform(0, 6), rng.uniform(0, 6)) for _ in range(25)]
        expected = [
            [i for i, p in enumerate(points)
             if max(abs(a - b) for a, b in zip(p, q)) <= 0.8
             and sum((a - b) ** 2 for a, b in zip(p, q)) <= 0.8 ** 2]
            for q in probes
        ]
        for strategy in ("index", "all-pairs"):
            grouper = SGBAnyGrouper(eps=0.8, strategy=strategy)
            grouper.add_batch(points)
            hits = grouper.neighbours_many(probes)
            assert [sorted(h) for h in hits] == expected

    def test_empty_probe_and_empty_grouper(self):
        grouper = SGBAnyGrouper(eps=1.0)
        assert grouper.neighbours_many([]) == []
        assert grouper.neighbours_many([(1.0, 2.0)]) == [[]]
