"""Cross-strategy and cross-path (scalar vs batch) equivalence suite.

For seeded random inputs the SGB operators must produce the same grouping:

* across every candidate-discovery strategy (the paper proves the three
  SGB-All procedures and the two SGB-Any procedures compute the same
  semantics), and
* across the scalar ``add`` reference path and the columnar ``add_batch``
  pipeline (bit-identical ``GroupingResult``, including the seed-dependent
  JOIN-ANY arbitration and the ELIMINATE row set).
"""

from __future__ import annotations

import random

import pytest

from repro.core.pointset import HAVE_NUMPY, PointSet
from repro.core.sgb_all import SGBAllGrouper, sgb_all_grouping
from repro.core.sgb_any import SGBAnyGrouper, sgb_any_grouping
from repro.exceptions import InvalidParameterError

METRICS = ["L2", "LINF", "L1"]
OVERLAPS = ["JOIN-ANY", "ELIMINATE", "FORM-NEW-GROUP"]
BACKENDS = ["python"] + (["numpy"] if HAVE_NUMPY else [])


def _clustered(n, seed, dims=2):
    """A mix of tight clusters and background noise, deterministic per seed."""
    rng = random.Random(seed)
    pts = []
    centers = [tuple(rng.uniform(0, 20) for _ in range(dims)) for _ in range(6)]
    for _ in range(n):
        if rng.random() < 0.8:
            c = rng.choice(centers)
            pts.append(tuple(x + rng.uniform(-0.6, 0.6) for x in c))
        else:
            pts.append(tuple(rng.uniform(0, 20) for _ in range(dims)))
    return pts


def _as_key(result):
    return (result.groups, result.eliminated, result.points)


class TestSgbAnyEquivalence:
    @pytest.mark.parametrize("metric", METRICS)
    @pytest.mark.parametrize("seed", [1, 2])
    def test_strategies_and_paths_agree(self, metric, seed):
        pts = _clustered(250, seed)
        results = {}
        for strategy in ("all-pairs", "index"):
            for batch in (False, True):
                r = sgb_any_grouping(
                    pts, eps=0.9, metric=metric, strategy=strategy, batch=batch
                )
                results[(strategy, batch)] = _as_key(r)
        reference = results[("all-pairs", False)]
        assert all(v == reference for v in results.values())

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_batch_backends_agree_with_scalar(self, backend):
        pts = _clustered(200, seed=5)
        scalar = sgb_any_grouping(pts, eps=0.8, batch=False)
        batched = sgb_any_grouping(
            PointSet.from_any(pts, backend=backend), eps=0.8, batch=True
        )
        assert _as_key(batched) == _as_key(scalar)

    def test_many_small_batches_match_scalar(self):
        """Repeated batches flush the index tail incrementally; results and
        group structure must still match the scalar path exactly."""
        pts = _clustered(400, seed=12)
        reference = sgb_any_grouping(pts, eps=0.8, batch=False)
        grouper = SGBAnyGrouper(eps=0.8)
        for k in range(0, 400, 50):
            grouper.add_batch(pts[k : k + 50])
        assert _as_key(grouper.finalize()) == _as_key(reference)

    def test_incremental_mix_of_add_and_add_batch(self):
        pts = _clustered(300, seed=6)
        reference = sgb_any_grouping(pts, eps=0.8, batch=False)
        grouper = SGBAnyGrouper(eps=0.8)
        grouper.add_batch(pts[:100])
        for p in pts[100:140]:
            grouper.add(p)
        grouper.add_batch(pts[140:])
        assert _as_key(grouper.finalize()) == _as_key(reference)

    @pytest.mark.parametrize("dims", [1, 3])
    def test_higher_and_lower_dimensions(self, dims):
        pts = _clustered(150, seed=7, dims=dims)
        scalar = sgb_any_grouping(pts, eps=0.8, batch=False)
        batched = sgb_any_grouping(pts, eps=0.8, batch=True)
        assert _as_key(batched) == _as_key(scalar)

    @pytest.mark.parametrize("metric", ["L2", "L1"])
    @pytest.mark.parametrize("dims", [8, 12, 32])
    def test_exact_boundary_parity_in_high_dimensions(self, metric, dims):
        """Regression: naive ``.sum(axis=-1)`` switches to pairwise summation
        past 8 dimensions, flipping exact-boundary eps decisions vs the
        scalar left-to-right loops.  Set eps to the exact pair distance so
        the predicate sits on the boundary; both paths must still agree.
        (LINF is excluded: max is order-independent, and its scalar INDEX
        path intentionally trusts the window query's rounded bounds.)"""
        from repro.core.distance import get_distance_function

        rng = random.Random(dims)
        dist = get_distance_function(metric)
        for trial in range(25):
            p = tuple(rng.uniform(-5, 5) for _ in range(dims))
            q = tuple(rng.uniform(-5, 5) for _ in range(dims))
            eps = dist(p, q)
            if eps <= 0:
                continue
            scalar = sgb_any_grouping([p, q], eps=eps, metric=metric, batch=False)
            batched = sgb_any_grouping([p, q], eps=eps, metric=metric, batch=True)
            assert scalar.groups == batched.groups, (metric, dims, trial)

    def test_empty_and_single_point_batches(self):
        grouper = SGBAnyGrouper(eps=0.5)
        grouper.add_batch([])
        assert grouper.finalize().groups == []
        grouper = SGBAnyGrouper(eps=0.5)
        grouper.add_batch([(1.0, 1.0)])
        assert grouper.finalize().groups == [[0]]


class TestSgbAllEquivalence:
    @pytest.mark.parametrize("metric", ["L2", "LINF"])
    @pytest.mark.parametrize("on_overlap", OVERLAPS)
    @pytest.mark.parametrize("seed", [3, 4])
    def test_strategies_and_paths_agree(self, metric, on_overlap, seed):
        pts = _clustered(220, seed)
        results = {}
        for strategy in ("all-pairs", "bounds-checking", "index"):
            for batch in (False, True):
                r = sgb_all_grouping(
                    pts,
                    eps=0.9,
                    metric=metric,
                    on_overlap=on_overlap,
                    strategy=strategy,
                    seed=17,
                    batch=batch,
                )
                results[(strategy, batch)] = _as_key(r)
        reference = results[("all-pairs", False)]
        assert all(v == reference for v in results.values())

    @pytest.mark.parametrize("on_overlap", OVERLAPS)
    def test_join_any_arbitration_is_seed_stable_across_paths(self, on_overlap):
        pts = _clustered(260, seed=9)
        for seed in (0, 1, 99):
            scalar = sgb_all_grouping(
                pts, eps=1.1, on_overlap=on_overlap, seed=seed, batch=False
            )
            batched = sgb_all_grouping(
                pts, eps=1.1, on_overlap=on_overlap, seed=seed, batch=True
            )
            assert _as_key(batched) == _as_key(scalar)

    def test_result_is_partition_under_both_paths(self):
        pts = _clustered(180, seed=10)
        for batch in (False, True):
            r = sgb_all_grouping(pts, eps=0.7, on_overlap="ELIMINATE", batch=batch)
            assert r.is_partition()


class TestDuplicateIndexRegression:
    """Regression: an explicit duplicate ``index`` used to corrupt state silently."""

    def test_scalar_add_rejects_non_finite_like_batch(self):
        # The scalar and batch paths must agree on input validation too.
        for grouper in (SGBAnyGrouper(eps=0.5), SGBAllGrouper(eps=0.5)):
            with pytest.raises(InvalidParameterError):
                grouper.add((float("nan"), 0.0))
            with pytest.raises(InvalidParameterError):
                grouper.add((0.0, float("inf")))

    def test_sgb_any_rejects_duplicate_explicit_index(self):
        grouper = SGBAnyGrouper(eps=0.5)
        grouper.add((0.0, 0.0), index=3)
        with pytest.raises(InvalidParameterError):
            grouper.add((5.0, 5.0), index=3)

    def test_sgb_any_rejects_auto_index_collision(self):
        grouper = SGBAnyGrouper(eps=0.5)
        grouper.add((0.0, 0.0), index=1)
        # The auto index for the second point is len(points) == 1, colliding
        # with the explicit index above; it must be rejected rather than
        # silently overwrite _point_by_index.
        with pytest.raises(InvalidParameterError):
            grouper.add((9.0, 9.0))

    def test_sgb_all_rejects_duplicate_explicit_index(self):
        grouper = SGBAllGrouper(eps=0.5)
        grouper.add((0.0, 0.0), index=7)
        with pytest.raises(InvalidParameterError):
            grouper.add((5.0, 5.0), index=7)

    def test_sgb_all_duplicate_does_not_corrupt_groups(self):
        grouper = SGBAllGrouper(eps=0.5)
        grouper.add((0.0, 0.0))
        with pytest.raises(InvalidParameterError):
            grouper.add((0.1, 0.1), index=0)
        result = grouper.finalize()
        assert result.groups == [[0]]
