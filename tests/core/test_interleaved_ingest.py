"""Randomized interleaved ``add`` / ``add_batch`` ingestion parity.

The streaming subsystem feeds groupers with arbitrary mixes of scalar and
batched admissions, so the invariant behind it is checked head-on here: any
interleaving of ``add`` calls and ``add_batch`` chunks over the same point
sequence must be bit-identical to the pure-scalar reference, on both
PointSet backends and for both operators.
"""

from __future__ import annotations

import random

import pytest

from repro.core.pointset import HAVE_NUMPY, PointSet
from repro.core.sgb_all import SGBAllGrouper
from repro.core.sgb_any import SGBAnyGrouper

BACKENDS = ["python"] + (["numpy"] if HAVE_NUMPY else [])


def _clustered(n, seed, dims=2):
    rng = random.Random(seed)
    centers = [tuple(rng.uniform(0, 15) for _ in range(dims)) for _ in range(5)]
    pts = []
    for _ in range(n):
        if rng.random() < 0.75:
            c = rng.choice(centers)
            pts.append(tuple(x + rng.uniform(-0.6, 0.6) for x in c))
        else:
            pts.append(tuple(rng.uniform(0, 15) for _ in range(dims)))
    return pts


def _mixed_ingest(grouper, points, seed, backend):
    """Feed ``points`` through a random mix of add / add_batch calls."""
    rng = random.Random(seed * 131 + 17)
    i = 0
    while i < len(points):
        if rng.random() < 0.4:
            grouper.add(points[i])
            i += 1
        else:
            size = rng.choice([0, 1, 2, 5, 9])
            chunk = points[i : i + size]
            if chunk:
                chunk = PointSet.from_any(chunk, backend=backend)
            grouper.add_batch(chunk)
            i += size


def _result_key(result):
    return (result.groups, result.eliminated, result.points)


class TestSgbAnyInterleaving:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("metric", ["L2", "LINF"])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_mixed_sequences_match_scalar_reference(self, backend, metric, seed):
        points = _clustered(180, seed)
        reference = SGBAnyGrouper(eps=0.9, metric=metric)
        reference.add_all(points)
        mixed = SGBAnyGrouper(eps=0.9, metric=metric)
        _mixed_ingest(mixed, points, seed, backend)
        assert _result_key(mixed.finalize()) == _result_key(reference.finalize())

    @pytest.mark.parametrize("seed", [4, 5])
    def test_mixed_sequences_in_higher_dims(self, seed):
        points = _clustered(120, seed, dims=4)
        reference = SGBAnyGrouper(eps=1.2)
        reference.add_all(points)
        mixed = SGBAnyGrouper(eps=1.2)
        _mixed_ingest(mixed, points, seed, BACKENDS[-1])
        assert _result_key(mixed.finalize()) == _result_key(reference.finalize())


class TestSgbAllInterleaving:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("on_overlap", ["JOIN-ANY", "ELIMINATE", "FORM-NEW-GROUP"])
    @pytest.mark.parametrize("seed", [6, 7])
    def test_mixed_sequences_match_scalar_reference(self, backend, on_overlap, seed):
        points = _clustered(150, seed)
        reference = SGBAllGrouper(eps=0.9, on_overlap=on_overlap, seed=3)
        reference.add_all(points)
        mixed = SGBAllGrouper(eps=0.9, on_overlap=on_overlap, seed=3)
        _mixed_ingest(mixed, points, seed, backend)
        assert _result_key(mixed.finalize()) == _result_key(reference.finalize())
