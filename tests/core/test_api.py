"""Tests for the top-level convenience API (repro.core.api)."""

import numpy as np
import pytest

from repro import cluster_by, sgb_all, sgb_any
from repro.exceptions import InvalidParameterError
from repro.spatial.grid import GridIndex


class TestInputHandling:
    def test_accepts_lists_tuples_and_numpy(self):
        as_tuples = [(0.0, 0.0), (0.1, 0.1), (5.0, 5.0)]
        as_lists = [[0.0, 0.0], [0.1, 0.1], [5.0, 5.0]]
        as_numpy = np.array(as_tuples)
        results = [sgb_any(p, eps=1.0) for p in (as_tuples, as_lists, as_numpy)]
        assert all(r.group_sizes() == [2, 1] for r in results)

    def test_rejects_mixed_dimensionality(self):
        with pytest.raises(InvalidParameterError):
            sgb_all([(0, 0), (1, 1, 1)], eps=1.0)

    def test_rejects_zero_dimensional_points(self):
        with pytest.raises(InvalidParameterError):
            sgb_any([()], eps=1.0)

    def test_rejects_non_positive_eps(self):
        with pytest.raises(InvalidParameterError):
            sgb_all([(0, 0)], eps=0)

    def test_one_dimensional_points_supported(self):
        result = sgb_any([(0.0,), (0.5,), (3.0,)], eps=1.0)
        assert sorted(result.group_sizes(), reverse=True) == [2, 1]


class TestCustomIndexFactory:
    def test_sgb_all_with_grid_index(self, small_clustered):
        rtree_result = sgb_all(small_clustered, eps=0.1, on_overlap="ELIMINATE")
        grid_result = sgb_all(
            small_clustered,
            eps=0.1,
            on_overlap="ELIMINATE",
            index_factory=lambda: GridIndex(cell_size=0.1),
        )
        assert sorted(map(tuple, rtree_result.groups)) == sorted(
            map(tuple, grid_result.groups)
        )

    def test_sgb_any_with_grid_index(self, small_clustered):
        rtree_result = sgb_any(small_clustered, eps=0.1)
        grid_result = sgb_any(
            small_clustered, eps=0.1, index_factory=lambda: GridIndex(cell_size=0.1)
        )
        assert sorted(map(tuple, rtree_result.groups)) == sorted(
            map(tuple, grid_result.groups)
        )


class TestClusterBy:
    def test_any_semantics_matches_sgb_any(self, small_uniform):
        assert (
            cluster_by(small_uniform, eps=0.1, semantics="any").group_count
            == sgb_any(small_uniform, eps=0.1).group_count
        )

    def test_all_semantics_matches_sgb_all(self, small_uniform):
        a = cluster_by(small_uniform, eps=0.1, semantics="all", seed=9)
        b = sgb_all(small_uniform, eps=0.1, seed=9)
        assert a.groups == b.groups

    def test_unknown_semantics_rejected(self):
        with pytest.raises(InvalidParameterError):
            cluster_by([(0, 0)], eps=1.0, semantics="sorta")


class TestBatchRouting:
    """The API routes through the batched pipeline; scalar stays available."""

    def test_rejects_non_finite_coordinates(self):
        with pytest.raises(InvalidParameterError):
            sgb_any([(0.0, 0.0), (float("nan"), 1.0)], eps=1.0)
        with pytest.raises(InvalidParameterError):
            sgb_all([(0.0, float("inf"))], eps=1.0)
        with pytest.raises(InvalidParameterError):
            sgb_any(np.array([[0.0, 0.0], [np.nan, 1.0]]), eps=1.0)

    def test_batch_flag_gives_identical_results(self):
        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 10, size=(200, 2))
        fast = sgb_any(pts, eps=0.8)
        reference = sgb_any(pts, eps=0.8, batch=False)
        assert fast.groups == reference.groups
        fast_all = sgb_all(pts, eps=0.8, on_overlap="ELIMINATE", seed=5)
        ref_all = sgb_all(pts, eps=0.8, on_overlap="ELIMINATE", seed=5, batch=False)
        assert fast_all.groups == ref_all.groups
        assert fast_all.eliminated == ref_all.eliminated

    def test_numpy_input_round_trips_exactly(self):
        rng = np.random.default_rng(4)
        pts = rng.uniform(0, 10, size=(50, 2))
        result = sgb_any(pts, eps=0.5)
        assert result.points == [tuple(row) for row in pts.tolist()]
