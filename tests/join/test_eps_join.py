"""Unit behaviour of the epsilon similarity join."""

from __future__ import annotations

import pytest

from repro.core.pointset import HAVE_NUMPY, PointSet
from repro.exceptions import DimensionalityError, InvalidParameterError
from repro.join import eps_join, eps_join_allpairs, sim_join

BACKENDS = ["python"] + (["numpy"] if HAVE_NUMPY else [])

LEFT = [(0.0, 0.0), (1.0, 0.0), (5.0, 5.0)]
RIGHT = [(0.5, 0.0), (5.2, 5.1), (9.0, 9.0)]


class TestEpsJoinBasics:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_known_pairs(self, backend):
        pairs = eps_join(LEFT, RIGHT, 1.0, workers=1, backend=backend)
        assert pairs == [(0, 0), (1, 0), (2, 1)]

    def test_pairs_are_lexicographically_sorted(self):
        pairs = eps_join(LEFT * 3, RIGHT * 3, 1.0, workers=1)
        assert pairs == sorted(pairs)

    def test_empty_sides(self):
        assert eps_join([], RIGHT, 1.0, workers=1) == []
        assert eps_join(LEFT, [], 1.0, workers=1) == []
        assert eps_join([], [], 1.0, workers=1) == []

    def test_duplicates_pair_independently(self):
        left = [(0.0, 0.0), (0.0, 0.0)]
        right = [(0.1, 0.0)]
        assert eps_join(left, right, 0.5, workers=1) == [(0, 0), (1, 0)]

    def test_boundary_distance_is_included(self):
        # distance exactly eps qualifies (<=, Definition 2)
        assert eps_join([(0.0, 0.0)], [(1.0, 0.0)], 1.0, workers=1) == [(0, 0)]

    def test_transpose_symmetry(self):
        forward = eps_join(LEFT, RIGHT, 1.3, workers=1)
        backward = eps_join(RIGHT, LEFT, 1.3, workers=1)
        assert sorted((j, i) for i, j in forward) == backward

    @pytest.mark.parametrize("metric", ["L2", "LINF", "L1"])
    def test_metrics_accepted(self, metric):
        pairs = eps_join(LEFT, RIGHT, 1.0, metric=metric, workers=1)
        assert (0, 0) in pairs

    def test_accepts_pointsets(self):
        pairs = eps_join(
            PointSet.from_any(LEFT), PointSet.from_any(RIGHT), 1.0, workers=1
        )
        assert pairs == [(0, 0), (1, 0), (2, 1)]


class TestEpsJoinValidation:
    @pytest.mark.parametrize("bad_eps", [0.0, -1.0])
    def test_non_positive_eps_rejected(self, bad_eps):
        with pytest.raises(InvalidParameterError):
            eps_join(LEFT, RIGHT, bad_eps, workers=1)

    def test_dimensionality_mismatch_rejected(self):
        with pytest.raises(DimensionalityError):
            eps_join(LEFT, [(1.0, 2.0, 3.0)], 1.0, workers=1)

    def test_unknown_metric_rejected(self):
        with pytest.raises(InvalidParameterError):
            eps_join(LEFT, RIGHT, 1.0, metric="cosine", workers=1)

    def test_nan_coordinates_rejected(self):
        with pytest.raises(InvalidParameterError):
            eps_join([(float("nan"), 0.0)], RIGHT, 1.0, workers=1)


class TestAllPairsBaseline:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_grid_join(self, backend):
        pairs = eps_join_allpairs(LEFT, RIGHT, 1.0, backend=backend)
        assert pairs == eps_join(LEFT, RIGHT, 1.0, workers=1, backend=backend)


class TestSimJoinDispatch:
    def test_eps_routes_to_eps_join(self):
        assert sim_join(LEFT, RIGHT, eps=1.0, workers=1) == [(0, 0), (1, 0), (2, 1)]

    def test_requires_exactly_one_of_eps_and_k(self):
        with pytest.raises(InvalidParameterError):
            sim_join(LEFT, RIGHT)
        with pytest.raises(InvalidParameterError):
            sim_join(LEFT, RIGHT, eps=1.0, k=2)
