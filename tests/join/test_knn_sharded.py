"""Sharded kNN-join: left-partition exactness, both index-shipping modes."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import InvalidParameterError
from repro.join import knn_join, knn_join_sharded


def _clustered_sides(seed: int, n: int = 150):
    rng = random.Random(seed)
    centers = [(rng.uniform(0, 20), rng.uniform(0, 20)) for _ in range(8)]
    left, right = [], []
    for i in range(n):
        cx, cy = centers[rng.randrange(len(centers))]
        pt = (cx + rng.gauss(0, 0.5), cy + rng.gauss(0, 0.5))
        (left if i % 3 else right).append(pt)
    return left, right


class TestShardedExactness:
    @pytest.mark.parametrize("shards", [2, 3, 5])
    @pytest.mark.parametrize("ship_index", [False, True])
    def test_forced_shards_match_serial(self, shards, ship_index):
        left, right = _clustered_sides(7)
        serial = knn_join(left, right, 3, workers=1)
        sharded = knn_join_sharded(
            left, right, 3, workers=2, shards=shards, ship_index=ship_index
        )
        assert sharded == serial

    @pytest.mark.parametrize("metric", ["L2", "LINF", "L1"])
    def test_metrics_match_serial(self, metric):
        left, right = _clustered_sides(13, n=90)
        serial = knn_join(left, right, 2, metric=metric, workers=1)
        assert knn_join_sharded(
            left, right, 2, metric=metric, workers=2, shards=3
        ) == serial

    def test_pool_execution_matches_serial(self):
        left, right = _clustered_sides(19, n=300)
        serial = knn_join(left, right, 3, workers=1)
        assert knn_join_sharded(left, right, 3, workers=2) == serial

    def test_workers_route_through_knn_join(self):
        # The public knn_join entry point dispatches to the sharded path
        # whenever the resolved worker count allows it.
        left, right = _clustered_sides(23, n=300)
        serial = knn_join(left, right, 3, workers=1)
        assert knn_join(left, right, 3, workers=2) == serial

    @pytest.mark.parametrize("ship_index", [False, True])
    def test_k_exceeding_right_side(self, ship_index):
        left, right = _clustered_sides(29, n=45)
        serial = knn_join(left, right, len(right) + 5, workers=1)
        sharded = knn_join_sharded(
            left, right, len(right) + 5, workers=2, shards=3, ship_index=ship_index
        )
        assert sharded == serial
        assert len(sharded) == len(left) * len(right)

    def test_duplicate_and_boundary_points(self):
        # Ties and duplicates stress the (distance, right_index) rank order;
        # the merge must preserve it shard by shard.
        left = [(0.0, 0.0), (1.0, 1.0), (0.0, 0.0), (2.0, 2.0), (1.0, 1.0),
                (3.0, 0.0), (0.0, 3.0), (1.5, 1.5)]
        right = [(1.0, 0.0), (0.0, 1.0), (1.0, 0.0), (2.0, 2.0), (1.0, 1.0)]
        serial = knn_join(left, right, 3, workers=1)
        assert knn_join_sharded(left, right, 3, workers=2, shards=4) == serial


class TestShardedFallbacks:
    def test_empty_sides(self):
        assert knn_join_sharded([], [(0.0, 0.0)], 2) == []
        assert knn_join_sharded([(0.0, 0.0)], [], 2) == []

    def test_degenerate_left_extent_falls_back_to_serial(self):
        # All left points at one location: no cut exists, the entry point
        # must still return the exact join.
        left = [(5.0, 5.0)] * 12
        right = [(float(i), 0.0) for i in range(10)]
        serial = knn_join(left, right, 2, workers=1)
        assert knn_join_sharded(left, right, 2, workers=2, shards=4) == serial

    def test_tiny_input_stays_serial(self):
        left = [(0.0, 0.0), (1.0, 0.0)]
        right = [(0.5, 0.0)]
        assert knn_join_sharded(left, right, 1, workers=2) == [(0, 0), (1, 0)]

    def test_invalid_k_rejected(self):
        with pytest.raises(InvalidParameterError):
            knn_join_sharded([(0.0, 0.0)], [(1.0, 0.0)], 0)
