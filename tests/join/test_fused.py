"""Fused join→group pipeline: bit-identity with the materialized two-step path."""

from __future__ import annotations

import random

import pytest

from repro.core.api import sgb_any
from repro.core.pointset import HAVE_NUMPY, PointSet
from repro.exceptions import InvalidParameterError
from repro.join import fused_join_group, sim_join

BACKENDS = ["python"] + (["numpy"] if HAVE_NUMPY else [])
METRICS = ["L2", "LINF", "L1"]


def _clustered_sides(seed: int, n: int = 90):
    """Two overlapping clustered relations with repeated matched points."""
    rng = random.Random(seed)
    centers = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(6)]
    left, right = [], []
    for i in range(n):
        cx, cy = centers[rng.randrange(len(centers))]
        pt = (cx + rng.gauss(0, 0.4), cy + rng.gauss(0, 0.4))
        (left if i % 2 else right).append(pt)
    return left, right


def _materialized(left, right, group_eps, *, eps=None, k=None, metric="L2",
                  group_side="right"):
    """The two-step reference: join, build pair points, group them."""
    pairs = sim_join(left, right, eps=eps, k=k, metric=metric, workers=1)
    side = right if group_side == "right" else left
    matched = [j for _, j in pairs] if group_side == "right" else [i for i, _ in pairs]
    side_ps = PointSet.from_any(side) if side else None
    pair_points = [side_ps.point(s) for s in matched]
    if not pair_points:
        return pairs, None
    return pairs, sgb_any(pair_points, eps=group_eps, metric=metric, workers=1)


class TestFusedEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("metric", METRICS)
    @pytest.mark.parametrize("seed", [3, 17, 41])
    def test_eps_join_matches_materialized(self, backend, metric, seed):
        left, right = _clustered_sides(seed)
        pairs, ref = _materialized(left, right, 0.8, eps=0.5, metric=metric)
        fused = fused_join_group(
            left, right, 0.8, eps=0.5, metric=metric, workers=1, backend=backend
        )
        assert fused.pairs == pairs
        assert fused.grouping.groups == ref.groups
        assert fused.grouping.points == ref.points
        assert fused.grouping.eliminated == []

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", [5, 23])
    def test_knn_join_matches_materialized(self, backend, seed):
        left, right = _clustered_sides(seed, n=60)
        pairs, ref = _materialized(left, right, 0.8, k=3)
        fused = fused_join_group(
            left, right, 0.8, k=3, workers=1, backend=backend
        )
        assert fused.pairs == pairs
        assert fused.grouping.groups == ref.groups
        assert fused.grouping.points == ref.points

    @pytest.mark.parametrize("group_side", ["left", "right"])
    def test_group_side_selects_the_grouped_relation(self, group_side):
        left, right = _clustered_sides(7)
        pairs, ref = _materialized(left, right, 0.8, eps=0.5, group_side=group_side)
        fused = fused_join_group(
            left, right, 0.8, eps=0.5, group_side=group_side, workers=1
        )
        assert fused.grouping.groups == ref.groups
        assert fused.grouping.points == ref.points

    def test_distinct_group_metric(self):
        left, right = _clustered_sides(11)
        pairs = sim_join(left, right, eps=0.5, metric="L2", workers=1)
        right_ps = PointSet.from_any(right)
        pair_points = [right_ps.point(j) for _, j in pairs]
        ref = sgb_any(pair_points, eps=0.8, metric="LINF", workers=1)
        fused = fused_join_group(
            left, right, 0.8, eps=0.5, metric="L2", group_metric="LINF", workers=1
        )
        assert fused.grouping.groups == ref.groups

    def test_sharded_matches_serial(self):
        left, right = _clustered_sides(13, n=240)
        serial = fused_join_group(left, right, 0.8, eps=0.5, workers=1)
        sharded = fused_join_group(left, right, 0.8, eps=0.5, workers=2)
        assert sharded.pairs == serial.pairs
        assert sharded.grouping.groups == serial.grouping.groups
        assert sharded.side_groups == serial.side_groups


class TestFusedStructure:
    def test_side_groups_align_with_pair_groups(self):
        left, right = _clustered_sides(19)
        fused = fused_join_group(left, right, 0.8, eps=0.5, workers=1)
        matched = [j for _, j in fused.pairs]
        assert len(fused.side_groups) == len(fused.grouping.groups)
        for members, side in zip(fused.grouping.groups, fused.side_groups):
            assert sorted({matched[position] for position in members}) == side

    def test_every_pair_position_appears_exactly_once(self):
        left, right = _clustered_sides(29)
        fused = fused_join_group(left, right, 0.8, eps=0.5, workers=1)
        flattened = sorted(p for members in fused.grouping.groups for p in members)
        assert flattened == list(range(len(fused.pairs)))

    def test_empty_join_gives_empty_grouping(self):
        fused = fused_join_group(
            [(0.0, 0.0)], [(100.0, 100.0)], 0.8, eps=0.5, workers=1
        )
        assert fused.pairs == []
        assert fused.grouping.groups == []
        assert fused.side_groups == []

    def test_invalid_group_side_rejected(self):
        with pytest.raises(InvalidParameterError, match="group_side"):
            fused_join_group([(0.0, 0.0)], [(0.0, 0.0)], 0.5, eps=0.5,
                             group_side="middle")

    def test_requires_exactly_one_join_parameter(self):
        with pytest.raises(InvalidParameterError):
            fused_join_group([(0.0, 0.0)], [(0.0, 0.0)], 0.5, eps=0.5, k=2)
        with pytest.raises(InvalidParameterError):
            fused_join_group([(0.0, 0.0)], [(0.0, 0.0)], 0.5)
