"""Unit behaviour of the k-nearest-neighbour similarity join."""

from __future__ import annotations

import pytest

from repro.core.pointset import HAVE_NUMPY
from repro.exceptions import DimensionalityError, InvalidParameterError
from repro.join import knn_join, sim_join

BACKENDS = ["python"] + (["numpy"] if HAVE_NUMPY else [])

LEFT = [(0.0, 0.0), (10.0, 10.0)]
RIGHT = [(1.0, 0.0), (2.0, 0.0), (9.0, 10.0), (0.5, 0.0)]


class TestKnnJoinBasics:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_nearest_first(self, backend):
        pairs = knn_join(LEFT, RIGHT, 2, backend=backend)
        assert pairs == [(0, 3), (0, 0), (1, 2), (1, 1)]

    def test_k_one(self):
        assert knn_join(LEFT, RIGHT, 1) == [(0, 3), (1, 2)]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_k_exceeding_right_side_ranks_everything(self, backend):
        # Contract: k >= len(right) returns *every* right row per left row —
        # no padding, no truncation — in canonical (distance, right_index)
        # rank order, identically on both backends.
        pairs = knn_join(LEFT, RIGHT, 10, backend=backend)
        assert [j for i, j in pairs if i == 0] == [3, 0, 1, 2]
        assert [j for i, j in pairs if i == 1] == [2, 1, 0, 3]
        assert len(pairs) == len(LEFT) * len(RIGHT)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_k_equal_to_right_side_matches_oversized_k(self, backend):
        exact = knn_join(LEFT, RIGHT, len(RIGHT), backend=backend)
        oversized = knn_join(LEFT, RIGHT, len(RIGHT) * 7, backend=backend)
        assert exact == oversized

    def test_distance_ties_break_by_right_index(self):
        left = [(0.0, 0.0)]
        right = [(1.0, 0.0), (0.0, 1.0), (-1.0, 0.0)]  # all at distance 1
        assert knn_join(left, right, 2) == [(0, 0), (0, 1)]

    def test_duplicate_right_points_rank_by_index(self):
        left = [(0.0, 0.0)]
        right = [(2.0, 0.0), (2.0, 0.0), (2.0, 0.0)]
        assert knn_join(left, right, 2) == [(0, 0), (0, 1)]

    def test_empty_sides(self):
        assert knn_join([], RIGHT, 2) == []
        assert knn_join(LEFT, [], 2) == []

    def test_far_probe_expands_until_it_finds_neighbours(self):
        # Probe far outside the right side's bounding box: the expanding
        # window must keep doubling until candidates appear.
        assert knn_join([(1000.0, 1000.0)], RIGHT, 1) == [(0, 2)]

    def test_degenerate_right_side_single_location(self):
        right = [(3.0, 3.0)] * 5
        assert knn_join([(0.0, 0.0)], right, 3) == [(0, 0), (0, 1), (0, 2)]

    @pytest.mark.parametrize("metric", ["L2", "LINF", "L1"])
    def test_metrics_accepted(self, metric):
        pairs = knn_join(LEFT, RIGHT, 1, metric=metric)
        assert pairs[0] == (0, 3)


class TestKnnJoinValidation:
    @pytest.mark.parametrize("bad_k", [0, -1, 1.5, "3", True])
    def test_invalid_k_rejected(self, bad_k):
        with pytest.raises(InvalidParameterError):
            knn_join(LEFT, RIGHT, bad_k)

    def test_dimensionality_mismatch_rejected(self):
        with pytest.raises(DimensionalityError):
            knn_join(LEFT, [(1.0, 2.0, 3.0)], 1)


class TestSimJoinDispatch:
    def test_k_routes_to_knn_join(self):
        assert sim_join(LEFT, RIGHT, k=1) == [(0, 3), (1, 2)]
