"""Randomized equivalence: both joins == a brute-force nested loop, everywhere.

This is the acceptance property of the join subsystem: for any mix of
dimensionality (2–4), duplicate coordinates, PointSet backend, and metric,
the eps-join and kNN-join results must be bit-identical to the obvious
nested loop over the scalar reference kernels — and the sharded eps-join
(workers=2, forced shards) bit-identical to the serial one.
"""

from __future__ import annotations

import random

import pytest

from repro.core.distance import resolve_metric
from repro.core.pointset import HAVE_NUMPY
from repro.core.predicates import SimilarityPredicate
from repro.join import eps_join, eps_join_allpairs, eps_join_sharded, knn_join

BACKENDS = ["python"] + (["numpy"] if HAVE_NUMPY else [])
METRICS = ["L2", "LINF", "L1"]


def _random_sides(seed, dims, n_left=70, n_right=55):
    """Clustered + uniform points with duplicates and shared coordinates."""
    rng = random.Random(seed)
    centers = [tuple(rng.uniform(0, 12) for _ in range(dims)) for _ in range(4)]

    def draw(n):
        out = []
        for _ in range(n):
            roll = rng.random()
            if roll < 0.6:
                c = rng.choice(centers)
                out.append(tuple(x + rng.uniform(-0.8, 0.8) for x in c))
            elif roll < 0.75 and out:
                out.append(rng.choice(out))  # exact duplicate
            else:
                out.append(tuple(rng.uniform(0, 12) for _ in range(dims)))
        return out

    left = draw(n_left)
    right = draw(n_right)
    # Cross-side duplicates: identical coordinates in both relations.
    right[0] = left[0]
    return left, right


def _brute_eps(left, right, eps, metric):
    predicate = SimilarityPredicate(resolve_metric(metric), eps)
    return [
        (i, j)
        for i, p in enumerate(left)
        for j, q in enumerate(right)
        if predicate.similar(p, q)
    ]


def _brute_knn(left, right, k, metric):
    distance = resolve_metric(metric).distance
    pairs = []
    for i, p in enumerate(left):
        ranked = sorted((distance(p, q), j) for j, q in enumerate(right))
        pairs.extend((i, j) for _, j in ranked[:k])
    return pairs


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("metric", METRICS)
@pytest.mark.parametrize("dims", [2, 3, 4])
class TestEpsJoinEquivalence:
    def test_matches_bruteforce_nested_loop(self, dims, metric, backend):
        left, right = _random_sides(seed=dims * 101 + len(metric), dims=dims)
        eps = 1.2
        expected = _brute_eps(left, right, eps, metric)
        assert eps_join(left, right, eps, metric=metric, workers=1, backend=backend) == expected
        assert eps_join_allpairs(left, right, eps, metric=metric, backend=backend) == expected

    def test_sharded_bit_identical_to_serial(self, dims, metric, backend):
        left, right = _random_sides(seed=dims * 211 + len(metric), dims=dims)
        eps = 1.0
        serial = eps_join(left, right, eps, metric=metric, workers=1, backend=backend)
        # Forced shards exercise the partition/stitch pipeline even where the
        # planner would stay serial; workers=2 adds the real process pool.
        forced = eps_join_sharded(left, right, eps, metric=metric, shards=3)
        assert forced == serial
        pooled = eps_join(left, right, eps, metric=metric, workers=2, backend=backend)
        assert pooled == serial


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("metric", METRICS)
@pytest.mark.parametrize("dims", [2, 3, 4])
class TestKnnJoinEquivalence:
    @pytest.mark.parametrize("k", [1, 3, 7])
    def test_matches_bruteforce_nested_loop(self, dims, metric, backend, k):
        left, right = _random_sides(
            seed=dims * 307 + k + len(metric), dims=dims, n_left=45, n_right=40
        )
        expected = _brute_knn(left, right, k, metric)
        assert knn_join(left, right, k, metric=metric, backend=backend) == expected


class TestCrossPathConsistency:
    """The eps-join agrees with a kNN-join restricted to the eps ball."""

    def test_knn_of_everything_contains_the_eps_pairs(self):
        left, right = _random_sides(seed=997, dims=2)
        eps = 1.5
        distance = resolve_metric("L2").distance
        eps_pairs = set(eps_join(left, right, eps, workers=1))
        all_ranked = knn_join(left, right, len(right))
        within = {
            (i, j) for i, j in all_ranked if distance(left[i], right[j]) <= eps
        }
        assert within == eps_pairs
