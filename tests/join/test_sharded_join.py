"""Sharded eps-join: partition/stitch exactness and the pool fallbacks."""

from __future__ import annotations

import random

import pytest

from repro.engine.partition import partition_pointset
from repro.engine.planner import ENV_MIN_POINTS, ENV_WORKERS
from repro.core.pointset import PointSet
from repro.join import eps_join, eps_join_sharded

EPS = 1.0


def _boundary_heavy_sides(seed=23, n=120):
    """Points deliberately crowded around eps-grid lines along x.

    Chains that stradde slab cuts are the hard case for halo stitching:
    every cross pair discovered in a band must be emitted exactly once.
    """
    rng = random.Random(seed)
    left, right = [], []
    for i in range(n):
        cell = rng.randrange(0, 12)
        x = cell * EPS + rng.choice([0.02, 0.5, 0.98])  # hug the grid lines
        y = rng.uniform(0, 3.0)
        (left if i % 2 else right).append((x, y))
    # Exact-boundary pairs across a grid line.
    left.append((3.0, 1.0))
    right.append((4.0, 1.0))  # distance exactly EPS, cells 2/3 vs 4
    right.append((3.0, 1.0))  # duplicate of a left point
    return left, right


class TestShardedExactness:
    @pytest.mark.parametrize("shards", [2, 3, 5])
    def test_forced_shards_match_serial(self, shards):
        left, right = _boundary_heavy_sides()
        serial = eps_join(left, right, EPS, workers=1)
        assert eps_join_sharded(left, right, EPS, shards=shards) == serial

    def test_no_duplicate_pairs_from_the_bands(self):
        left, right = _boundary_heavy_sides(seed=31)
        pairs = eps_join_sharded(left, right, EPS, shards=4)
        assert len(pairs) == len(set(pairs))

    def test_single_sided_slabs_contribute_nothing(self):
        # All left points low, all right points high: most slabs hold one
        # side only; only the pairs near the split can (and must) survive.
        left = [(float(i) * 0.3, 0.0) for i in range(40)]
        right = [(12.0 + i * 0.3, 0.0) for i in range(40)]
        serial = eps_join(left, right, EPS, workers=1)
        assert eps_join_sharded(left, right, EPS, shards=3) == serial

    def test_degenerate_input_falls_back_to_serial(self):
        # One occupied cell: no valid cut exists, the sharded entry point
        # must still return the exact join.
        left = [(0.1, 0.1), (0.2, 0.2)]
        right = [(0.15, 0.15)]
        assert eps_join_sharded(left, right, EPS, shards=4) == eps_join(
            left, right, EPS, workers=1
        )

    def test_combined_partition_is_reused_from_the_engine(self):
        # The join shards on the union of both relations with the engine's
        # partitioner; sanity-check the union really is cuttable here so the
        # forced-shards tests above exercise the sharded path, not fallback.
        left, right = _boundary_heavy_sides(seed=47)
        combined = PointSet.concat(
            [PointSet.from_any(left), PointSet.from_any(right)]
        )
        assert partition_pointset(combined, EPS, 3) is not None


class TestWorkerPoolPath:
    def test_pool_execution_matches_serial(self):
        left, right = _boundary_heavy_sides(seed=59, n=200)
        serial = eps_join(left, right, EPS, workers=1)
        assert eps_join(left, right, EPS, workers=2) == serial

    def test_env_workers_are_honoured(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "2")
        monkeypatch.setenv(ENV_MIN_POINTS, "8")
        left, right = _boundary_heavy_sides(seed=61, n=150)
        assert eps_join(left, right, EPS) == eps_join(left, right, EPS, workers=1)

    def test_below_the_parallel_floor_stays_serial(self, monkeypatch):
        monkeypatch.delenv(ENV_MIN_POINTS, raising=False)
        left = [(0.0, 0.0), (1.0, 1.0)]
        right = [(0.1, 0.1)]
        # Tiny payloads plan serial even with workers requested; the result
        # is the exact join either way.
        assert eps_join(left, right, EPS, workers=2) == [(0, 0)]
