"""The service's core contract: every HTTP response is bit-identical (after
a JSON round trip) to the corresponding in-process call.

Randomized: point batches and parameters are drawn from seeded RNGs, the
in-process result is pushed through the same payload builders the routes
use, both sides are canonicalised with ``json.loads(json.dumps(...))``, and
the decoded HTTP body must equal the canonical in-process payload exactly —
floats, group orders, pair orders, everything.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core.api import sgb_all, sgb_any, sim_join
from repro.core.pointset import HAVE_NUMPY
from repro.server.jsonio import (
    grouping_result_payload,
    join_pairs_payload,
    query_result_payload,
)

BACKENDS = ["python"] + (["numpy"] if HAVE_NUMPY else [])


def canon(payload: object) -> object:
    """The JSON round trip both sides of every comparison go through."""
    return json.loads(json.dumps(payload))


def random_points(rng: random.Random, n: int, dims: int = 2):
    return [
        [round(rng.uniform(0.0, 10.0), 6) for _ in range(dims)] for _ in range(n)
    ]


# ---------------------------------------------------------------------------
# SQL route vs Database.execute
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "sql",
    [
        "SELECT id, x, y FROM pts",
        "SELECT count(*) FROM pts",
        "SELECT x + y, x * 2 FROM pts LIMIT 7",
        "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.3",
        "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY LINF WITHIN 0.2",
        "SELECT count(*) FROM pts "
        "GROUP BY x, y DISTANCE-TO-ALL L2 WITHIN 0.3 ON-OVERLAP JOIN-ANY",
        "SELECT count(*) FROM pts "
        "GROUP BY x, y DISTANCE-TO-ALL L2 WITHIN 0.3 ON-OVERLAP ELIMINATE",
        "SELECT count(*) FROM pts "
        "GROUP BY x, y DISTANCE-TO-ALL LINF WITHIN 0.25 ON-OVERLAP FORM-NEW-GROUP",
        "SELECT a.id, b.id FROM pts a SIMILARITY JOIN pts b "
        "ON DISTANCE(a.x, a.y, b.x, b.y) L2 WITHIN 0.2",
        "SELECT a.id, b.id FROM pts a SIMILARITY JOIN pts b "
        "ON DISTANCE(a.x, a.y, b.x, b.y) KNN 2",
        "EXPLAIN SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.3",
        "EXPLAIN SELECT a.id FROM pts a SIMILARITY JOIN pts b "
        "ON DISTANCE(a.x, a.y, b.x, b.y) L2 WITHIN 0.2",
    ],
)
def test_sql_over_http_matches_in_process(server, client, sql):
    expected = canon(query_result_payload(server.app.db.execute(sql)))
    assert client.query(sql) == expected


def test_sql_strategy_override_matches(server, client):
    sql = "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.3"
    expected = canon(
        query_result_payload(server.app.db.execute(sql, sgb_strategy="all-pairs"))
    )
    assert client.query(sql, strategy="all-pairs") == expected


def test_randomized_sql_filters_match(server, client):
    rng = random.Random(4242)
    for _ in range(10):
        lo = round(rng.uniform(0.0, 0.8), 3)
        sql = f"SELECT id, x FROM pts WHERE x > {lo} LIMIT {rng.randint(1, 50)}"
        expected = canon(query_result_payload(server.app.db.execute(sql)))
        assert client.query(sql) == expected


# ---------------------------------------------------------------------------
# /v1/sgb vs sgb_any / sgb_all
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("metric", ["L2", "LINF"])
def test_randomized_sgb_any_matches(client, metric):
    rng = random.Random(hash(metric) & 0xFFFF)
    for trial in range(5):
        points = random_points(rng, rng.randint(2, 40))
        eps = round(rng.uniform(0.2, 2.0), 3)
        expected = canon(
            grouping_result_payload(sgb_any(points, eps, metric=metric))
        )
        got = client.sgb(points, eps, kind="any", metric=metric)
        assert got == expected, f"sgb_any diverged on trial {trial}"


@pytest.mark.parametrize("on_overlap", ["JOIN-ANY", "ELIMINATE", "FORM-NEW-GROUP"])
def test_randomized_sgb_all_matches(client, on_overlap):
    rng = random.Random(len(on_overlap))
    for trial in range(5):
        points = random_points(rng, rng.randint(2, 30))
        eps = round(rng.uniform(0.2, 1.5), 3)
        seed = rng.randint(0, 999)
        expected = canon(
            grouping_result_payload(
                sgb_all(points, eps, on_overlap=on_overlap, seed=seed)
            )
        )
        got = client.sgb(points, eps, kind="all", on_overlap=on_overlap, seed=seed)
        assert got == expected, f"sgb_all/{on_overlap} diverged on trial {trial}"


@pytest.mark.parametrize("strategy", ["all-pairs", "index"])
def test_sgb_any_strategy_parameter_matches(client, strategy):
    rng = random.Random(77)
    points = random_points(rng, 25)
    expected = canon(
        grouping_result_payload(sgb_any(points, 0.5, strategy=strategy))
    )
    assert client.sgb(points, 0.5, kind="any", strategy=strategy) == expected


# ---------------------------------------------------------------------------
# /v1/join vs sim_join
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_randomized_eps_join_matches(client, backend):
    rng = random.Random(101 + len(backend))
    for trial in range(5):
        left = random_points(rng, rng.randint(1, 25))
        right = random_points(rng, rng.randint(1, 25))
        eps = round(rng.uniform(0.3, 3.0), 3)
        expected = canon(
            join_pairs_payload(sim_join(left, right, eps=eps, backend=backend))
        )
        got = client.join(left, right, eps=eps, backend=backend)
        assert got == expected, f"eps-join/{backend} diverged on trial {trial}"


@pytest.mark.parametrize("backend", BACKENDS)
def test_randomized_knn_join_matches(client, backend):
    rng = random.Random(202 + len(backend))
    for trial in range(5):
        left = random_points(rng, rng.randint(1, 20))
        right = random_points(rng, rng.randint(1, 20))
        k = rng.randint(1, 4)
        expected = canon(
            join_pairs_payload(sim_join(left, right, k=k, backend=backend))
        )
        got = client.join(left, right, k=k, backend=backend)
        assert got == expected, f"knn-join/{backend} diverged on trial {trial}"


def test_linf_join_matches(client):
    rng = random.Random(31)
    left = random_points(rng, 15)
    right = random_points(rng, 15)
    expected = canon(
        join_pairs_payload(sim_join(left, right, eps=1.0, metric="LINF"))
    )
    assert client.join(left, right, eps=1.0, metric="LINF") == expected


# ---------------------------------------------------------------------------
# async jobs return the same bytes the blocking route would have
# ---------------------------------------------------------------------------


def test_async_query_result_matches_blocking(server, client):
    sql = "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.3"
    expected = canon(query_result_payload(server.app.db.execute(sql)))
    job_id = client.query_async(sql)
    record = client.wait_job(job_id)
    assert record["status"] == "done"
    assert client.job_result(job_id) == expected
    assert client.query(sql) == expected  # and the blocking route agrees


def test_float_values_round_trip_bit_identically(client):
    # Values with no short decimal form must survive the JSON round trip.
    points = [[0.1 + 0.2, 1.0 / 3.0], [2.0**-30, 9876.543209876543]]
    expected = canon(grouping_result_payload(sgb_any(points, 0.5)))
    got = client.sgb(points, 0.5, kind="any")
    assert got == expected
    assert got["points"] == [
        [0.30000000000000004, 0.3333333333333333],
        [2.0**-30, 9876.543209876543],
    ]
