"""Concurrent clients: many threads, mixed routes, answers identical to a
serial replay of the same operations (one shared Database, no corruption)."""

from __future__ import annotations

import json
import random
import threading

from repro.core.api import sgb_any, sim_join
from repro.server.jsonio import (
    grouping_result_payload,
    join_pairs_payload,
    query_result_payload,
)

N_THREADS = 8
OPS_PER_THREAD = 6


def canon(payload):
    return json.loads(json.dumps(payload))


def _build_ops(server):
    """A deterministic mixed-op script with its serially computed answers."""
    rng = random.Random(1234)
    ops = []
    for _ in range(N_THREADS * OPS_PER_THREAD):
        choice = rng.randrange(4)
        if choice == 0:
            limit = rng.randint(1, 60)
            sql = f"SELECT id, x, y FROM pts LIMIT {limit}"
            expected = canon(query_result_payload(server.app.db.execute(sql)))
            ops.append(("query", sql, expected))
        elif choice == 1:
            points = [
                [round(rng.uniform(0, 5), 4), round(rng.uniform(0, 5), 4)]
                for _ in range(rng.randint(2, 20))
            ]
            eps = round(rng.uniform(0.3, 1.5), 3)
            expected = canon(grouping_result_payload(sgb_any(points, eps)))
            ops.append(("sgb", (points, eps), expected))
        elif choice == 2:
            left = [
                [round(rng.uniform(0, 5), 4), round(rng.uniform(0, 5), 4)]
                for _ in range(rng.randint(1, 12))
            ]
            right = [
                [round(rng.uniform(0, 5), 4), round(rng.uniform(0, 5), 4)]
                for _ in range(rng.randint(1, 12))
            ]
            eps = round(rng.uniform(0.5, 2.0), 3)
            expected = canon(join_pairs_payload(sim_join(left, right, eps=eps)))
            ops.append(("join", (left, right, eps), expected))
        else:
            ops.append(("health", None, None))
    return ops


def test_eight_threads_mixed_routes_match_serial_replay(server):
    ops = _build_ops(server)
    failures: list = []
    barrier = threading.Barrier(N_THREADS)

    def worker(thread_index: int) -> None:
        # One client (one keep-alive connection) per thread, by contract.
        client = server.client()
        barrier.wait()
        try:
            for op_index in range(
                thread_index * OPS_PER_THREAD, (thread_index + 1) * OPS_PER_THREAD
            ):
                kind, arg, expected = ops[op_index]
                if kind == "query":
                    got = client.query(arg)
                elif kind == "sgb":
                    got = client.sgb(arg[0], arg[1], kind="any")
                elif kind == "join":
                    got = client.join(arg[0], arg[1], eps=arg[2])
                else:
                    health = client.health()
                    assert health["status"] == "ok"
                    continue
                if got != expected:
                    failures.append((op_index, kind, got, expected))
        except Exception as exc:  # noqa: BLE001 - surfaced by the main thread
            failures.append((thread_index, "exception", repr(exc), None))
        finally:
            client.close()

    threads = [
        threading.Thread(target=worker, args=(i,), name=f"client-{i}")
        for i in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not failures, f"{len(failures)} divergences: {failures[:3]}"


def test_concurrent_requests_share_the_result_cache_safely(make_db):
    """Hammer one cached point batch from many threads; every response equal."""
    import os

    import pytest

    from repro.server.testing import running_server
    from repro.storage.cache import ResultCache

    if os.environ.get("SGB_CACHE", "").strip().lower() in ("off", "0", "false", "no"):
        pytest.skip("SGB_CACHE=off bypasses the cache this test observes")

    cache = ResultCache.memory()
    points = [[float(i % 7) / 3.0, float(i % 5) / 3.0] for i in range(40)]
    sgb_any(points, 0.4, cache=cache)  # prime: later calls are cache hits
    # A cached grouping carries no advisory plan, so the expectation must be
    # the hit payload, not the first (computed) one.
    expected = canon(
        grouping_result_payload(sgb_any(points, 0.4, cache=cache))
    )
    with running_server(database=make_db(), cache=cache) as server:
        results: list = []

        def worker() -> None:
            client = server.client()
            try:
                for _ in range(4):
                    results.append(client.sgb(points, 0.4, kind="any"))
            finally:
                client.close()

        threads = [threading.Thread(target=worker) for _ in range(N_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
    assert len(results) == N_THREADS * 4
    assert all(result == expected for result in results)
    # The shared cache actually served repeats, and its counters stayed sane.
    assert cache.hits >= N_THREADS * 4 - 1
    assert cache.hits + cache.misses >= N_THREADS * 4
