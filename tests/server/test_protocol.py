"""Unit tests of the hand-rolled HTTP/1.1 parser and response writer."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.server.protocol import (
    HttpError,
    Request,
    Response,
    StreamingResponse,
    error_response,
    json_response,
    read_request,
    write_response,
)


def parse(raw: bytes, **limits):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **limits)

    return asyncio.run(go())


def render(response, keep_alive=True) -> bytes:
    """Serialise a response through a real (memory-backed) stream pair."""

    async def go():
        chunks = []

        class _Transport:
            def write(self, data):
                chunks.append(data)

        class _Writer:
            transport = _Transport()

            def write(self, data):
                chunks.append(data)

            async def drain(self):
                pass

        await write_response(_Writer(), response, keep_alive=keep_alive)
        return b"".join(chunks)

    return asyncio.run(go())


# ---------------------------------------------------------------------------
# request parsing
# ---------------------------------------------------------------------------


def test_parse_get_with_params_and_headers():
    req = parse(
        b"GET /v1/jobs/abc?limit=5&cursor=10 HTTP/1.1\r\n"
        b"Host: localhost\r\nX-Auth-Token: s3cret\r\n\r\n"
    )
    assert req.method == "GET"
    assert req.path == "/v1/jobs/abc"
    assert req.params == {"limit": "5", "cursor": "10"}
    assert req.headers["host"] == "localhost"  # header names lower-cased
    assert req.headers["x-auth-token"] == "s3cret"
    assert req.body == b""
    assert req.keep_alive


def test_parse_post_body_by_content_length():
    body = json.dumps({"sql": "SELECT 1"}).encode()
    req = parse(
        b"POST /v1/query HTTP/1.1\r\n"
        + f"Content-Length: {len(body)}\r\n\r\n".encode()
        + body
    )
    assert req.method == "POST"
    assert req.body == body
    assert req.json() == {"sql": "SELECT 1"}


def test_connection_close_header_disables_keep_alive():
    req = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
    assert not req.keep_alive


def test_clean_eof_returns_none():
    assert parse(b"") is None


def test_truncated_body_returns_none():
    raw = b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort"
    assert parse(raw) is None


@pytest.mark.parametrize(
    "raw",
    [
        b"NONSENSE\r\n\r\n",  # not three request-line parts
        b"FROB / HTTP/1.1\r\n\r\n",  # unknown method
        b"GET / SPDY/3\r\n\r\n",  # unsupported protocol
        b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",  # malformed header
        b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",  # bad length
        b"POST / HTTP/1.1\r\nContent-Length: -4\r\n\r\n",  # negative length
        b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",  # unsupported
    ],
)
def test_malformed_requests_are_400(raw):
    with pytest.raises(HttpError) as err:
        parse(raw)
    assert err.value.status == 400


def test_oversized_headers_are_431():
    raw = b"GET / HTTP/1.1\r\n" + b"X-Pad: " + b"a" * 4096 + b"\r\n\r\n"
    with pytest.raises(HttpError) as err:
        parse(raw, max_header_bytes=1024)
    assert err.value.status == 431


def test_oversized_body_is_413():
    raw = b"POST / HTTP/1.1\r\nContent-Length: 999999\r\n\r\n"
    with pytest.raises(HttpError) as err:
        parse(raw, max_body_bytes=1024)
    assert err.value.status == 413


def test_request_json_rejects_syntax_errors_and_allows_empty():
    assert Request(method="POST", path="/").json() == {}
    bad = Request(method="POST", path="/", body=b"{nope")
    with pytest.raises(HttpError) as err:
        bad.json()
    assert err.value.status == 400


# ---------------------------------------------------------------------------
# response writing
# ---------------------------------------------------------------------------


def test_buffered_response_carries_content_length():
    wire = render(json_response({"ok": True}), keep_alive=True)
    head, _, body = wire.partition(b"\r\n\r\n")
    assert head.startswith(b"HTTP/1.1 200 OK")
    assert f"Content-Length: {len(body)}".encode() in head
    assert b"Connection: keep-alive" in head
    assert json.loads(body) == {"ok": True}


def test_close_response_advertises_connection_close():
    wire = render(Response(body=b"{}"), keep_alive=False)
    assert b"Connection: close" in wire


def test_error_response_body_shape():
    wire = render(error_response(404, "no such route"))
    body = json.loads(wire.partition(b"\r\n\r\n")[2])
    assert body == {
        "error": {"type": "HttpError", "message": "no such route", "status": 404}
    }
    assert wire.startswith(b"HTTP/1.1 404 Not Found")


def test_streaming_response_is_chunked_and_reassembles():
    lines = [b'{"streaming": "rows"}\n', b"[1]\n", b"[2]\n"]
    wire = render(StreamingResponse(chunks=iter(lines)))
    head, _, payload = wire.partition(b"\r\n\r\n")
    assert b"Transfer-Encoding: chunked" in head
    assert b"Content-Length" not in head
    # De-chunk and compare with the original lines.
    out = b""
    rest = payload
    while rest:
        size_hex, _, rest = rest.partition(b"\r\n")
        size = int(size_hex, 16)
        if size == 0:
            break
        out, rest = out + rest[:size], rest[size + 2 :]
    assert out == b"".join(lines)
