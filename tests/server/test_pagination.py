"""Pagination and NDJSON streaming: windows reassemble to the full payload."""

from __future__ import annotations

import pytest

from repro.server.client import ServerError

SQL_ALL = "SELECT id, x, y FROM pts"


def test_no_window_means_untouched_payload(client):
    out = client.query(SQL_ALL)
    assert set(out) == {"columns", "rows", "rowcount", "plan", "rewrites"}  # no page keys
    assert len(out["rows"]) == 60


def test_cursor_walk_reassembles_the_full_result(client):
    full = client.query(SQL_ALL)["rows"]
    rows, cursor, pages = [], None, 0
    while True:
        page = client.query(SQL_ALL, limit=7, cursor=cursor)
        assert page["total"] == len(full)
        assert page["offset"] == (int(cursor) if cursor else 0)
        rows.extend(page["rows"])
        pages += 1
        cursor = page["next_cursor"]
        if cursor is None:
            break
    assert rows == full
    assert pages == 9  # ceil(60 / 7)


def test_last_page_has_no_next_cursor(client):
    page = client.query(SQL_ALL, limit=100)
    assert page["next_cursor"] is None
    assert page["rows"] == client.query(SQL_ALL)["rows"]


def test_cursor_beyond_the_end_is_an_empty_page(client):
    page = client.query(SQL_ALL, limit=5, cursor="999")
    assert page["rows"] == []
    assert page["next_cursor"] is None
    assert page["total"] == 60


def test_sgb_groups_paginate_too(client):
    points = [[float(i), 0.0] for i in range(10)]
    full = client.sgb(points, 0.1, kind="any")["groups"]
    assert len(full) == 10
    status, page = client.request(
        "POST",
        "/v1/sgb",
        {"points": points, "eps": 0.1, "kind": "any"},
        params={"limit": 4},
    )
    assert status == 200
    assert page["groups"] == full[:4]
    assert page["next_cursor"] == "4"


def test_invalid_windows_are_400(client):
    for params in ({"limit": "nope"}, {"limit": "0"}, {"cursor": "-3"}, {"cursor": "x"}):
        status, _ = client.request(
            "POST", "/v1/query", {"sql": SQL_ALL}, params=params
        )
        assert status == 400, params


def test_limit_is_clamped_to_the_server_ceiling(server, client):
    assert server.app.settings.max_page_rows >= 60
    page = client.query(SQL_ALL, limit=10**9)
    assert len(page["rows"]) == 60  # clamped limit still covers the result


def test_ndjson_stream_reassembles_to_the_buffered_payload(client):
    buffered = client.query(SQL_ALL)
    lines = list(client.query_stream(SQL_ALL))
    header, rows = lines[0], lines[1:]
    assert header["streaming"] == "rows"
    assert rows == buffered["rows"]
    rebuilt = {k: v for k, v in header.items() if k != "streaming"}
    rebuilt["rows"] = rows
    assert rebuilt == buffered


def test_streaming_an_error_still_reports_json(client):
    with pytest.raises(ServerError) as err:
        list(client.query_stream("SELEKT nope"))
    assert err.value.status == 400


def test_job_results_paginate(client):
    job_id = client.query_async(SQL_ALL)
    client.wait_job(job_id)
    full = client.job_result(job_id)["rows"]
    page = client.job_result(job_id, limit=10, cursor="55")
    assert page["rows"] == full[55:60]
    assert page["next_cursor"] is None
    assert page["total"] == 60
