"""``/v1/query`` exposes the executed plan and the optimizer's rewrite trace.

The wire payload must be bit-identical to the JSON form of the in-process
``QueryResult`` — same plan object fields, same rewrite entries in the same
order — so a client sees exactly what ``Database.execute`` saw.
"""

from __future__ import annotations

import random

import pytest

from repro.minidb.database import Database
from repro.server.jsonio import query_result_payload
from repro.server.testing import running_server

CHAIN = "SELECT t1.v, t3.w FROM t1, t2, t3 WHERE t1.k = t2.k AND t2.j = t3.j"
SIM = (
    "SELECT d.ax FROM "
    "(SELECT a.x AS ax, a.y AS ay FROM pa AS a "
    "SIMILARITY JOIN pb AS b ON DISTANCE(a.x, a.y, b.x, b.y) WITHIN 0.5) AS d "
    "WHERE d.ax < 2.0"
)
SGB = (
    "SELECT count(*) FROM pa GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1"
)


def _build_db() -> Database:
    rng = random.Random(29)
    db = Database()
    db.execute("CREATE TABLE t1 (k INT, v FLOAT)")
    db.execute("CREATE TABLE t2 (k INT, j INT)")
    db.execute("CREATE TABLE t3 (j INT, w FLOAT)")
    db.insert_rows("t1", [(i % 6, float(i)) for i in range(100)])
    db.insert_rows("t2", [(i % 6, i) for i in range(100)])
    db.insert_rows("t3", [(j, float(j)) for j in range(10)])
    db.execute("CREATE TABLE pa (x FLOAT, y FLOAT)")
    db.execute("CREATE TABLE pb (x FLOAT, y FLOAT)")
    for name in ("pa", "pb"):
        db.insert_rows(
            name,
            [(rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)) for _ in range(80)],
        )
    return db


@pytest.fixture(scope="module")
def rewrite_server():
    with running_server(database=_build_db()) as srv:
        yield srv


@pytest.fixture
def rewrite_client(rewrite_server):
    with rewrite_server.client() as c:
        yield c


@pytest.mark.parametrize("sql", [CHAIN, SIM, SGB], ids=["chain", "sim", "sgb"])
def test_payload_matches_in_process_result(rewrite_client, sql):
    local = _build_db()
    expected = query_result_payload(local.execute(sql))
    got = rewrite_client.query(sql)
    assert got == expected


def test_rewrites_key_present_and_ordered(rewrite_client):
    got = rewrite_client.query(CHAIN)
    assert "rewrites" in got and "plan" in got
    assert got["rewrites"], "optimizer trace missing from the wire payload"
    assert all(isinstance(entry, str) for entry in got["rewrites"])
    local = _build_db()
    assert got["rewrites"] == list(local.execute(CHAIN).rewrites)


def test_optimizer_off_database_reports_empty_trace():
    with running_server(database=Database(optimizer=False)) as srv:
        with srv.client() as c:
            c.query("CREATE TABLE t (x INT)")
            c.query("INSERT INTO t VALUES (1), (2), (3)")
            got = c.query("SELECT x FROM t WHERE x > 1")
            assert got["rewrites"] == []
