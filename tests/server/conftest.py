"""Shared fixtures for the HTTP service suite."""

from __future__ import annotations

import pytest

from repro.minidb.database import Database
from repro.server.testing import running_server
from repro.workloads.synthetic import clustered_points


def build_database(n: int = 60, seed: int = 11) -> Database:
    """A database with one point table the whole suite queries."""
    db = Database()
    db.execute("CREATE TABLE pts (id INT, x DOUBLE, y DOUBLE)")
    points = clustered_points(n, clusters=5, spread=0.05, seed=seed)
    db.insert_rows("pts", [(i, float(x), float(y)) for i, (x, y) in enumerate(points)])
    return db


@pytest.fixture(scope="session")
def make_db():
    """The database builder itself (server-per-module fixtures rebuild)."""
    return build_database


@pytest.fixture(scope="module")
def server():
    """One served app per test module (ephemeral port, no auth)."""
    with running_server(database=build_database()) as srv:
        yield srv


@pytest.fixture
def client(server):
    with server.client() as c:
        yield c
