"""Graceful shutdown: drain semantics in-process, SIGTERM in a real process."""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.server.client import ServerError
from repro.server.testing import running_server

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


# ---------------------------------------------------------------------------
# in-process drain
# ---------------------------------------------------------------------------


def test_draining_server_rejects_work_but_answers_health(make_db):
    with running_server(database=make_db()) as server:
        client = server.client()
        assert client.query("SELECT count(*) FROM pts")["rows"] == [[60]]
        server.app.begin_drain()
        try:
            health = client.health()
            assert health["status"] == "draining"
            with pytest.raises(ServerError) as err:
                client.query("SELECT count(*) FROM pts")
            assert err.value.status == 503
            status, body = client.request("POST", "/v1/sgb", {"points": [], "eps": 1.0})
            assert status == 503
            assert body["error"]["status"] == 503
        finally:
            client.close()


def test_draining_executor_rejects_new_jobs_with_503(make_db):
    with running_server(database=make_db()) as server:
        client = server.client()
        try:
            server.app.jobs.shutdown(wait=True)
            status, body = client.request(
                "POST",
                "/v1/query",
                {"sql": "SELECT count(*) FROM pts"},
                params={"mode": "async"},
            )
            assert status == 503
        finally:
            client.close()


def test_stop_leaves_engine_worker_pools_usable(make_db):
    """In-process servers must NOT flip the process-wide shutdown flag."""
    import repro.engine.workers as W

    with running_server(database=make_db()) as server:
        with server.client() as client:
            client.health()
    assert W._SHUTTING_DOWN is False
    assert W.pool_stats()["shutting_down"] is False


# ---------------------------------------------------------------------------
# real-subprocess SIGTERM drain
# ---------------------------------------------------------------------------


def _spawn_server(*extra_args: str) -> "tuple[subprocess.Popen, str, int]":
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env.pop("SGB_SERVER_PORT", None)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.server", "--port", "0", *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    deadline = time.monotonic() + 30
    banner = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            if proc.poll() is not None:
                raise AssertionError(f"server exited early: {proc.returncode}")
            continue
        if "listening on" in line:
            banner = line.strip()
            break
    else:
        proc.kill()
        raise AssertionError("server never printed its listen banner")
    address = banner.rsplit("http://", 1)[1]
    host, _, port = address.partition(":")
    return proc, host, int(port)


def _get(host: str, port: int, path: str) -> "tuple[int, dict]":
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def test_sigterm_drains_and_exits_zero():
    proc, host, port = _spawn_server()
    try:
        status, health = _get(host, port, "/v1/health")
        assert status == 200 and health["status"] == "ok"
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=30)
    except BaseException:
        proc.kill()
        raise
    assert proc.returncode == 0
    assert "draining" in out
    assert "stopped cleanly" in out


def test_sigint_also_shuts_down_cleanly():
    proc, host, port = _spawn_server()
    try:
        status, _ = _get(host, port, "/v1/health")
        assert status == 200
        proc.send_signal(signal.SIGINT)
        out, _ = proc.communicate(timeout=30)
    except BaseException:
        proc.kill()
        raise
    assert proc.returncode == 0
    assert "stopped cleanly" in out


def test_subprocess_serves_queries_with_auth():
    proc, host, port = _spawn_server("--token", "tok123")
    try:
        status, _ = _get(host, port, "/v1/health")  # health skips auth
        assert status == 200
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            body = json.dumps(
                {"points": [[0.0, 0.0], [0.1, 0.1], [5.0, 5.0]], "eps": 0.5}
            ).encode()
            conn.request(
                "POST",
                "/v1/sgb",
                body=body,
                headers={"Authorization": "Bearer tok123"},
            )
            response = conn.getresponse()
            payload = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 200
        assert payload["groups"] == [[0, 1], [2]]
        proc.send_signal(signal.SIGTERM)
        proc.communicate(timeout=30)
    except BaseException:
        proc.kill()
        raise
    assert proc.returncode == 0
