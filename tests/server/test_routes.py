"""Route behaviour over a live server: auth, errors, ops surface, loading."""

from __future__ import annotations

import json

import pytest

from repro.server.client import ServerError
from repro.server.testing import running_server


# ---------------------------------------------------------------------------
# auth
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def auth_server(make_db):
    with running_server(database=make_db(), auth_token="hunter2") as srv:
        yield srv


def test_missing_token_is_401(auth_server):
    with auth_server.app.client() as anon:
        anon.token = None
        with pytest.raises(ServerError) as err:
            anon.query("SELECT count(*) FROM pts")
        assert err.value.status == 401


def test_wrong_token_is_403(auth_server):
    with auth_server.app.client() as bad:
        bad.token = "wrong"
        with pytest.raises(ServerError) as err:
            bad.stats()
        assert err.value.status == 403


def test_right_token_succeeds(auth_server):
    with auth_server.client() as c:  # app.client() carries the token
        out = c.query("SELECT count(*) FROM pts")
        assert out["rows"] == [[60]]


def test_x_auth_token_header_also_works(auth_server):
    import http.client

    conn = http.client.HTTPConnection(auth_server.host, auth_server.port, timeout=10)
    try:
        conn.request(
            "GET", "/v1/stats", headers={"X-Auth-Token": "hunter2"}
        )
        assert conn.getresponse().status == 200
    finally:
        conn.close()


def test_health_never_requires_auth(auth_server):
    with auth_server.app.client() as anon:
        anon.token = None
        assert anon.health()["status"] == "ok"


# ---------------------------------------------------------------------------
# routing + error mapping (unauthenticated server from conftest)
# ---------------------------------------------------------------------------


def test_unknown_path_is_404(client):
    status, body = client.request("GET", "/v1/nope")
    assert status == 404
    assert body["error"]["status"] == 404


def test_wrong_method_is_405(client):
    status, _ = client.request("GET", "/v1/query")
    assert status == 405


def test_invalid_json_body_is_400(client):
    import http.client

    conn = http.client.HTTPConnection(client.host, client.port, timeout=10)
    try:
        conn.request(
            "POST",
            "/v1/query",
            body=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        assert response.status == 400
        assert b"not valid JSON" in response.read()
    finally:
        conn.close()


def test_sql_error_maps_to_400_with_engine_type(client):
    status, body = client.request("POST", "/v1/query", {"sql": "SELEKT zap"})
    assert status == 400
    assert body["error"]["status"] == 400
    assert body["error"]["type"] != "HttpError"  # the engine's own exception type


def test_missing_sql_field_is_400(client):
    status, _ = client.request("POST", "/v1/query", {"nope": 1})
    assert status == 400


def test_sgb_requires_points_and_eps(client):
    status, _ = client.request("POST", "/v1/sgb", {"eps": 1.0})
    assert status == 400
    status, _ = client.request("POST", "/v1/sgb", {"points": [[0, 0]]})
    assert status == 400
    status, _ = client.request(
        "POST", "/v1/sgb", {"points": [[0, 0]], "eps": 1.0, "kind": "bogus"}
    )
    assert status == 400


def test_join_requires_exactly_one_of_eps_or_k(client):
    base = {"left": [[0.0, 0.0]], "right": [[0.0, 0.0]]}
    status, _ = client.request("POST", "/v1/join", base)
    assert status == 400
    status, _ = client.request("POST", "/v1/join", {**base, "eps": 1.0, "k": 2})
    assert status == 400


def test_unknown_format_parameter_is_400(client):
    status, _ = client.request(
        "POST", "/v1/query", {"sql": "SELECT id FROM pts"}, params={"format": "xml"}
    )
    assert status == 400


def test_malformed_request_line_gets_answered_then_closed(server):
    import socket

    with socket.create_connection((server.host, server.port), timeout=10) as sock:
        sock.sendall(b"GARBAGE\r\n\r\n")
        raw = b""
        while b"\r\n\r\n" not in raw:
            chunk = sock.recv(4096)
            if not chunk:
                break
            raw += chunk
        assert raw.startswith(b"HTTP/1.1 400")
        assert b"Connection: close" in raw


# ---------------------------------------------------------------------------
# ops surface
# ---------------------------------------------------------------------------


def test_health_shape(client):
    health = client.health()
    assert health["status"] == "ok"
    assert health["tables"] == 1
    assert isinstance(health["uptime_s"], float)


def test_stats_counts_routes_and_exposes_pool_state(client):
    client.query("SELECT count(*) FROM pts")
    stats = client.stats()
    assert stats["draining"] is False
    assert isinstance(stats["inflight"], int)
    assert stats["pool"]["shutting_down"] is False
    assert stats["executor"]["accepting"] is True
    query_stats = stats["routes"]["POST /v1/query"]
    assert query_stats["count"] >= 1
    assert query_stats["mean_ms"] >= 0.0
    # The stats request itself is metered too, on its template.
    assert "GET /v1/stats" in client.stats()["routes"]


# ---------------------------------------------------------------------------
# loading
# ---------------------------------------------------------------------------


def test_load_inserts_decoded_rows(client):
    client.query("CREATE TABLE loaded (d DATE, x DOUBLE)")
    inserted = client.load(
        "loaded", [[{"$date": "2016-05-16"}, 1.5], [{"$date": "2016-05-17"}, 2.5]]
    )
    assert inserted == 2
    out = client.query("SELECT d, x FROM loaded")
    assert out["rows"] == [[{"$date": "2016-05-16"}, 1.5], [{"$date": "2016-05-17"}, 2.5]]


def test_load_unknown_table_is_400(client):
    status, _ = client.request(
        "POST", "/v1/load", {"table": "missing", "rows": [[1]]}
    )
    assert status == 400


def test_keep_alive_reuses_one_connection(client):
    client.health()
    assert client._conn is not None
    conn_id = id(client._conn)
    for _ in range(3):
        client.health()
    assert id(client._conn) == conn_id


def test_response_is_valid_json_bytes(server):
    import http.client

    conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
    try:
        conn.request("GET", "/v1/health")
        response = conn.getresponse()
        assert response.getheader("Content-Type") == "application/json"
        json.loads(response.read())
    finally:
        conn.close()
