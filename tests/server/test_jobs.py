"""Background jobs: the async flow, failure capture, deletion, 409 states."""

from __future__ import annotations

import threading

import pytest

from repro.server.client import ServerError


def test_async_query_lifecycle(client):
    job_id = client.query_async("SELECT count(*) FROM pts")
    record = client.wait_job(job_id)
    assert record["status"] == "done"
    assert record["kind"] == "query"
    assert record["result"] == f"/v1/jobs/{job_id}/result"
    assert record["runtime_s"] >= 0.0
    result = client.job_result(job_id)
    assert result["rows"] == [[60]]


def test_async_sgb_route(client):
    points = [[0.0, 0.0], [0.1, 0.1], [9.0, 9.0]]
    status, body = client.request(
        "POST",
        "/v1/sgb",
        {"points": points, "eps": 0.5, "kind": "any"},
        params={"mode": "async"},
    )
    assert status == 202
    assert body["status"] == "queued"
    record = client.wait_job(body["job_id"])
    assert record["status"] == "done"
    assert client.job_result(body["job_id"])["groups"] == [[0, 1], [2]]


def test_failing_job_records_the_error(client):
    job_id = client.query_async("SELECT boom FROM nowhere")
    record = client.wait_job(job_id)
    assert record["status"] == "error"
    assert record["error"]["type"]
    assert "result" not in record
    with pytest.raises(ServerError) as err:
        client.job_result(job_id)
    assert err.value.status == 409


def test_unknown_job_is_404(client):
    with pytest.raises(ServerError) as err:
        client.job("deadbeef")
    assert err.value.status == 404
    with pytest.raises(ServerError) as err:
        client.job_result("deadbeef")
    assert err.value.status == 404


def test_delete_job_forgets_it(client):
    job_id = client.query_async("SELECT count(*) FROM pts")
    client.wait_job(job_id)
    assert client.delete_job(job_id) is True
    with pytest.raises(ServerError) as err:
        client.job(job_id)
    assert err.value.status == 404


def test_result_before_completion_is_409(server, client):
    """A job still running answers 409 on its result route."""
    release = threading.Event()
    entered = threading.Event()

    def slow() -> dict:
        entered.set()
        release.wait(timeout=30)
        return {"rows": [], "columns": [], "rowcount": 0, "plan": None}

    job = server.app.jobs.submit("slow", slow)
    try:
        assert entered.wait(timeout=10)
        record = client.job(job.id)
        assert record["status"] == "running"
        with pytest.raises(ServerError) as err:
            client.job_result(job.id)
        assert err.value.status == 409
    finally:
        release.set()
    record = client.wait_job(job.id)
    assert record["status"] == "done"


def test_job_results_are_spooled_to_disk(server, client):
    """Finished payloads live in the LocalFileStore spool, not in memory."""
    job_id = client.query_async("SELECT id FROM pts LIMIT 3")
    client.wait_job(job_id)
    spooled = server.app.jobs.spool.get(job_id)
    assert spooled is not None
    import json

    assert json.loads(spooled) == client.job_result(job_id)
