"""The example scripts must run end-to-end without errors."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "SGB-All" in output
        assert "SGB-Any" in output
        assert "Physical plan" in output

    def test_manet_gateways(self):
        output = run_example("manet_gateways.py")
        assert "Query 1" in output
        assert "gateway" in output.lower()

    def test_streaming_checkins(self):
        output = run_example("streaming_checkins.py")
        assert "hotspot groups" in output
        assert "WINDOW 200 SLIDE 100" in output
        assert "expired" in output

    def test_join_checkins(self):
        output = run_example("join_checkins.py")
        assert "eps-join" in output
        assert "kNN-join" in output
        assert "SIMILARITY JOIN" in output
        assert "activity clusters" in output
        # The fused join→group section asserts bit-identity with the
        # two-step pipeline in-process; reaching this line means it held.
        assert "fused join->group" in output
        assert "identical to the two-step pipeline" in output

    def test_persistent_checkins(self):
        output = run_example("persistent_checkins.py")
        assert "PERSISTENT" not in output  # the SQL stays inside the script
        assert "reloaded 4000 rows at mutation version 4000" in output
        assert "cold query" in output and "warm query" in output
        assert "1 hits" in output
        assert "the next query recomputed" in output

    def test_serve_checkins(self):
        output = run_example("serve_checkins.py")
        assert "serving on http://127.0.0.1:" in output
        assert "identical to the in-process call" in output
        assert "identical to sgb_any()" in output
        # The async job, pagination, and streaming sections assert
        # bit-identity in-process; reaching these lines means they held.
        assert "spooled result identical to the blocking route" in output
        assert "bit-identically" in output
        assert "server drained cleanly" in output

    def test_location_privacy_groups(self):
        output = run_example("location_privacy_groups.py")
        assert "ON-OVERLAP JOIN-ANY" in output
        assert "ELIMINATE" in output
        assert "communities" in output

    @pytest.mark.slow
    def test_tpch_analytics(self):
        output = run_example("tpch_analytics.py", "0.0005")
        assert "GB1" in output and "SGB6" in output
