"""Tests for the Polygon value type (ST_Polygon aggregate output)."""

import math

import pytest

from repro.exceptions import EmptyInputError
from repro.geometry.polygon import Polygon


class TestConstruction:
    def test_from_points_builds_hull(self):
        polygon = Polygon.from_points([(0, 0), (2, 0), (2, 2), (0, 2), (1, 1)])
        assert polygon.vertex_count == 4

    def test_from_points_empty_raises(self):
        with pytest.raises(EmptyInputError):
            Polygon.from_points([])

    def test_single_point_polygon(self):
        polygon = Polygon.from_points([(3, 4)])
        assert polygon.vertex_count == 1
        assert polygon.area() == 0.0
        assert polygon.perimeter() == 0.0


class TestGeometry:
    def test_square_area_and_perimeter(self):
        polygon = Polygon.from_points([(0, 0), (2, 0), (2, 2), (0, 2)])
        assert polygon.area() == pytest.approx(4.0)
        assert polygon.perimeter() == pytest.approx(8.0)

    def test_triangle_area(self):
        polygon = Polygon.from_points([(0, 0), (4, 0), (0, 3)])
        assert polygon.area() == pytest.approx(6.0)

    def test_segment_perimeter_is_length(self):
        polygon = Polygon.from_points([(0, 0), (3, 4)])
        assert polygon.perimeter() == pytest.approx(5.0)
        assert polygon.area() == 0.0

    def test_contains(self):
        polygon = Polygon.from_points([(0, 0), (4, 0), (4, 4), (0, 4)])
        assert polygon.contains((2, 2))
        assert polygon.contains((0, 0))
        assert not polygon.contains((5, 5))

    def test_centroid_of_square(self):
        polygon = Polygon.from_points([(0, 0), (2, 0), (2, 2), (0, 2)])
        cx, cy = polygon.centroid()
        assert cx == pytest.approx(1.0)
        assert cy == pytest.approx(1.0)


class TestWkt:
    def test_point_wkt(self):
        assert Polygon.from_points([(1, 2)]).wkt() == "POINT (1.0 2.0)"

    def test_linestring_wkt(self):
        wkt = Polygon.from_points([(0, 0), (1, 1)]).wkt()
        assert wkt.startswith("LINESTRING")

    def test_polygon_wkt_is_closed_ring(self):
        wkt = Polygon.from_points([(0, 0), (1, 0), (0, 1)]).wkt()
        assert wkt.startswith("POLYGON ((")
        ring = wkt[len("POLYGON (("):-2].split(", ")
        assert ring[0] == ring[-1]
