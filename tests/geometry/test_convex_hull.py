"""Tests for the convex hull utilities."""

import math

import pytest

from repro.exceptions import EmptyInputError
from repro.geometry.convex_hull import (
    convex_hull,
    cross,
    diameter,
    farthest_point,
    point_in_convex_polygon,
)


class TestCross:
    def test_counter_clockwise_positive(self):
        assert cross((0, 0), (1, 0), (0, 1)) > 0

    def test_clockwise_negative(self):
        assert cross((0, 0), (0, 1), (1, 0)) < 0

    def test_collinear_zero(self):
        assert cross((0, 0), (1, 1), (2, 2)) == 0


class TestConvexHull:
    def test_square_hull(self):
        points = [(0, 0), (1, 0), (1, 1), (0, 1), (0.5, 0.5)]
        hull = convex_hull(points)
        assert set(hull) == {(0, 0), (1, 0), (1, 1), (0, 1)}
        assert len(hull) == 4

    def test_interior_points_excluded(self):
        points = [(0, 0), (4, 0), (2, 4), (2, 1), (2, 2)]
        hull = convex_hull(points)
        assert set(hull) == {(0, 0), (4, 0), (2, 4)}

    def test_collinear_points_reduce_to_segment_endpoints(self):
        points = [(0, 0), (1, 1), (2, 2), (3, 3)]
        hull = convex_hull(points)
        assert set(hull) == {(0, 0), (3, 3)}

    def test_duplicate_points_deduplicated(self):
        hull = convex_hull([(1, 1), (1, 1), (1, 1)])
        assert hull == [(1, 1)]

    def test_two_distinct_points(self):
        hull = convex_hull([(0, 0), (2, 3)])
        assert set(hull) == {(0, 0), (2, 3)}

    def test_counter_clockwise_orientation(self):
        hull = convex_hull([(0, 0), (4, 0), (4, 4), (0, 4)])
        area2 = sum(
            hull[i][0] * hull[(i + 1) % len(hull)][1]
            - hull[(i + 1) % len(hull)][0] * hull[i][1]
            for i in range(len(hull))
        )
        assert area2 > 0  # positive signed area -> counter-clockwise

    def test_empty_input_raises(self):
        with pytest.raises(EmptyInputError):
            convex_hull([])

    def test_hull_contains_all_input_points(self):
        import random

        rng = random.Random(3)
        points = [(rng.random(), rng.random()) for _ in range(100)]
        hull = convex_hull(points)
        for p in points:
            assert point_in_convex_polygon(p, hull)


class TestPointInConvexPolygon:
    SQUARE = [(0, 0), (4, 0), (4, 4), (0, 4)]

    def test_interior(self):
        assert point_in_convex_polygon((2, 2), self.SQUARE)

    def test_boundary(self):
        assert point_in_convex_polygon((4, 2), self.SQUARE)
        assert point_in_convex_polygon((0, 0), self.SQUARE)

    def test_exterior(self):
        assert not point_in_convex_polygon((5, 2), self.SQUARE)
        assert not point_in_convex_polygon((-0.1, 2), self.SQUARE)

    def test_degenerate_single_vertex(self):
        assert point_in_convex_polygon((1, 1), [(1, 1)])
        assert not point_in_convex_polygon((1, 2), [(1, 1)])

    def test_degenerate_segment(self):
        segment = [(0, 0), (2, 2)]
        assert point_in_convex_polygon((1, 1), segment)
        assert not point_in_convex_polygon((1, 1.5), segment)
        assert not point_in_convex_polygon((3, 3), segment)

    def test_empty_hull(self):
        assert not point_in_convex_polygon((0, 0), [])


class TestFarthestPointAndDiameter:
    def test_farthest_point_of_square(self):
        hull = [(0, 0), (4, 0), (4, 4), (0, 4)]
        assert farthest_point((-1, -1), hull) == (4, 4)
        assert farthest_point((5, 5), hull) == (0, 0)

    def test_farthest_point_empty_raises(self):
        with pytest.raises(EmptyInputError):
            farthest_point((0, 0), [])

    def test_diameter_of_square(self):
        points = [(0, 0), (4, 0), (4, 4), (0, 4)]
        assert diameter(points) == pytest.approx(math.sqrt(32))

    def test_diameter_of_segment_and_point(self):
        assert diameter([(0, 0), (3, 4)]) == pytest.approx(5.0)
        assert diameter([(2, 2)]) == 0.0

    def test_diameter_matches_brute_force(self):
        import random

        rng = random.Random(11)
        points = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(60)]
        brute = max(
            math.dist(points[i], points[j])
            for i in range(len(points))
            for j in range(i + 1, len(points))
        )
        assert diameter(points) == pytest.approx(brute)
