"""Property-based tests for the geometry substrate."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.convex_hull import convex_hull, diameter, point_in_convex_polygon
from repro.geometry.polygon import Polygon

# Quantised coordinates avoid denormal-float artefacts (two points that are
# distinct before translation but collapse to the same float afterwards).
coordinate = st.integers(min_value=-1000, max_value=1000).map(lambda v: v / 10.0)
point = st.tuples(coordinate, coordinate)
points = st.lists(point, min_size=1, max_size=40)


@settings(max_examples=80, deadline=None)
@given(pts=points)
def test_hull_vertices_are_input_points(pts):
    hull = convex_hull(pts)
    originals = {(float(x), float(y)) for x, y in pts}
    assert set(hull) <= originals


@settings(max_examples=80, deadline=None)
@given(pts=points)
def test_hull_contains_every_input_point(pts):
    hull = convex_hull(pts)
    for p in pts:
        assert point_in_convex_polygon(p, hull)


@settings(max_examples=80, deadline=None)
@given(pts=points)
def test_hull_is_convex(pts):
    from repro.geometry.convex_hull import cross

    hull = convex_hull(pts)
    if len(hull) < 3:
        return
    n = len(hull)
    for i in range(n):
        a, b, c = hull[i], hull[(i + 1) % n], hull[(i + 2) % n]
        assert cross(a, b, c) >= -1e-7


@settings(max_examples=60, deadline=None)
@given(pts=st.lists(point, min_size=2, max_size=25))
def test_diameter_equals_max_pairwise_distance(pts):
    brute = max(
        math.dist(pts[i], pts[j]) for i in range(len(pts)) for j in range(i + 1, len(pts))
    )
    assert diameter(pts) <= brute + 1e-6
    assert diameter(pts) >= brute - max(1e-9, 1e-9 * brute)


@settings(max_examples=60, deadline=None)
@given(pts=points)
def test_polygon_area_is_non_negative_and_bounded_by_bbox(pts):
    polygon = Polygon.from_points(pts)
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    bbox_area = (max(xs) - min(xs)) * (max(ys) - min(ys))
    assert 0.0 <= polygon.area() <= bbox_area + 1e-6


@settings(max_examples=60, deadline=None)
@given(pts=points, translation=point)
def test_hull_is_translation_invariant(pts, translation):
    dx, dy = translation
    hull_a = convex_hull(pts)
    hull_b = convex_hull([(x + dx, y + dy) for x, y in pts])
    translated = sorted((round(x + dx, 6), round(y + dy, 6)) for x, y in hull_a)
    produced = sorted((round(x, 6), round(y, 6)) for x, y in hull_b)
    assert len(translated) == len(produced)
    for (ax, ay), (bx, by) in zip(translated, produced):
        assert math.isclose(ax, bx, abs_tol=1e-4)
        assert math.isclose(ay, by, abs_tol=1e-4)
