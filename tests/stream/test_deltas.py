"""Unit tests for the flush-to-flush delta events."""

from __future__ import annotations

from repro.stream.deltas import DeltaKind, diff_flushes


def kinds(events):
    return [e.kind for e in events]


class TestDiffFlushes:
    def test_first_flush_creates_every_group(self):
        events = diff_flushes([], [[0, 1], [2]])
        assert kinds(events) == [DeltaKind.GROUP_CREATED, DeltaKind.GROUP_CREATED]
        assert events[0].group == 0 and events[0].members == (0, 1)
        assert events[0].added == (0, 1)
        assert events[1].group == 2

    def test_unchanged_groups_emit_nothing(self):
        assert diff_flushes([[0, 1], [2]], [[0, 1], [2]]) == []

    def test_extension_reports_added_members(self):
        events = diff_flushes([[0, 1]], [[0, 1, 5]])
        assert kinds(events) == [DeltaKind.GROUP_EXTENDED]
        assert events[0].group == 0
        assert events[0].added == (5,)
        assert events[0].members == (0, 1, 5)

    def test_merge_reports_sources_in_order(self):
        events = diff_flushes([[0, 1], [4, 5]], [[0, 1, 3, 4, 5]])
        assert kinds(events) == [DeltaKind.GROUPS_MERGED]
        assert events[0].sources == (0, 4)
        assert events[0].group == 0
        assert events[0].added == (3,)

    def test_expiry_when_no_member_survives(self):
        events = diff_flushes([[0, 1], [4, 5]], [[4, 5]])
        assert kinds(events) == [DeltaKind.GROUP_EXPIRED]
        assert events[0].group == 0
        assert events[0].members == (0, 1)

    def test_shrunk_group_keeps_identity_silently(self):
        # Member 0 expired but member 1 survives: the group continues.
        assert diff_flushes([[0, 1]], [[1]]) == []

    def test_split_keeps_identity_on_smallest_surviving_fragment(self):
        # The bridge point 2 expired, splitting {1, 2, 3} into {1} and {3}:
        # {1} continues the old group, {3} is reported as created.
        events = diff_flushes([[1, 2, 3]], [[1], [3]])
        assert kinds(events) == [DeltaKind.GROUP_CREATED]
        assert events[0].group == 3

    def test_split_fragment_with_new_points_still_counts_as_created(self):
        events = diff_flushes([[1, 2, 3]], [[1], [3, 7]])
        assert kinds(events) == [DeltaKind.GROUP_CREATED]
        assert events[0].group == 3
        assert events[0].added == (7,)

    def test_merge_and_create_and_expire_in_one_diff(self):
        events = diff_flushes(
            [[0, 1], [2], [8, 9]],
            [[0, 1, 2], [5, 6]],
        )
        assert kinds(events) == [
            DeltaKind.GROUPS_MERGED,
            DeltaKind.GROUP_CREATED,
            DeltaKind.GROUP_EXPIRED,
        ]
        merged, created, expired = events
        assert merged.sources == (0, 2)
        assert created.group == 5
        assert expired.group == 8

    def test_events_are_deterministically_ordered(self):
        # Current-flush events in canonical group order, expirations last by
        # ascending anchor.
        events = diff_flushes(
            [[10, 11], [20, 21]],
            [[3], [5]],
        )
        assert kinds(events) == [
            DeltaKind.GROUP_CREATED,
            DeltaKind.GROUP_CREATED,
            DeltaKind.GROUP_EXPIRED,
            DeltaKind.GROUP_EXPIRED,
        ]
        assert [e.group for e in events] == [3, 5, 10, 20]

    def test_everything_expires_to_empty_flush(self):
        events = diff_flushes([[0, 1], [2]], [])
        assert kinds(events) == [DeltaKind.GROUP_EXPIRED, DeltaKind.GROUP_EXPIRED]
        assert [e.group for e in events] == [0, 2]
