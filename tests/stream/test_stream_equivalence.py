"""Randomized equivalence: every flush == a from-scratch SGB-Any of the window.

This is the acceptance property of the streaming subsystem: for any window
shape, micro-batch split, backend, and worker count, the grouping emitted at
each flush must be bit-identical (after the canonical relabelling every SGB
path shares) to running ``sgb_any`` from scratch over the window's live
points.  The incremental path (epoch forests + cross-epoch edges + eviction
rebuilds) and the per-flush sharded path are both covered.
"""

from __future__ import annotations

import random

import pytest

from repro.core.api import sgb_any
from repro.core.pointset import HAVE_NUMPY
from repro.stream.session import StreamingSGB
from repro.stream.window import TickWindow

BACKENDS = ["python"] + (["numpy"] if HAVE_NUMPY else [])

#: (window size, slide) shapes: tumbling, half-overlap, fine-grained slide.
WINDOW_SHAPES = [(40, 40), (40, 20), (60, 15)]


def _stream_points(n, seed, dims=2):
    """Clustered points with duplicates and boundary chains mixed in."""
    rng = random.Random(seed)
    centers = [tuple(rng.uniform(0, 15) for _ in range(dims)) for _ in range(5)]
    pts = []
    for _ in range(n):
        roll = rng.random()
        if roll < 0.7:
            c = rng.choice(centers)
            pts.append(tuple(x + rng.uniform(-0.7, 0.7) for x in c))
        elif roll < 0.8 and pts:
            pts.append(rng.choice(pts))  # exact duplicate
        else:
            pts.append(tuple(rng.uniform(0, 15) for _ in range(dims)))
    return pts


def _chunks(points, seed):
    """Split the stream into random micro-batches (including empty ones)."""
    rng = random.Random(seed * 31 + 7)
    out, i = [], 0
    while i < len(points):
        size = rng.choice([0, 1, 2, 3, 5, 8, 13])
        out.append(points[i : i + size])
        i += size
    return out


def _assert_flushes_match_scratch(flushes, points, eps, metric):
    assert flushes, "stream produced no windows"
    for window in flushes:
        live = [points[i] for i in window.indices]
        reference = sgb_any(live, eps=eps, metric=metric, workers=1)
        assert window.result.groups == reference.groups, (
            f"window {window.window_id} ({window.start}, {window.end}) diverged "
            f"from a from-scratch grouping of its {len(live)} live points"
        )
        assert window.result.is_partition()
        assert window.global_groups() == [
            sorted(window.indices[i] for i in group) for group in window.result.groups
        ]


class TestCountWindowEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("size,slide", WINDOW_SHAPES)
    @pytest.mark.parametrize("seed", [3, 11])
    def test_every_flush_matches_from_scratch(self, backend, size, slide, seed):
        points = _stream_points(200, seed)
        session = StreamingSGB(
            eps=0.9, window=size, slide=slide, workers=1, backend=backend
        )
        flushes = []
        for chunk in _chunks(points, seed):
            flushes.extend(session.ingest(chunk))
        flushes.extend(session.close())
        _assert_flushes_match_scratch(flushes, points, 0.9, "L2")

    @pytest.mark.parametrize("metric", ["L2", "LINF"])
    def test_metrics_and_dims(self, metric):
        points = _stream_points(150, seed=29, dims=3)
        session = StreamingSGB(eps=1.1, metric=metric, window=30, slide=10, workers=1)
        flushes = []
        for chunk in _chunks(points, 29):
            flushes.extend(session.ingest(chunk))
        flushes.extend(session.close())
        _assert_flushes_match_scratch(flushes, points, 1.1, metric)


class TestTickWindowEquivalence:
    @pytest.mark.parametrize("seed", [5, 17])
    def test_every_flush_matches_from_scratch(self, seed):
        rng = random.Random(seed * 7 + 1)
        points = _stream_points(180, seed)
        ticks = sorted(rng.randint(0, 400) for _ in points)
        # Insert an idle gap so windows drain and refill.
        ticks = [t if t < 250 else t + 300 for t in ticks]
        session = StreamingSGB(eps=0.9, window=TickWindow(size=80, slide=20), workers=1)
        flushes, i = [], 0
        while i < len(points):
            step = rng.choice([1, 3, 7, 12])
            flushes.extend(
                session.ingest(points[i : i + step], ticks=ticks[i : i + step])
            )
            i += step
        flushes.extend(session.close())
        _assert_flushes_match_scratch(flushes, points, 0.9, "L2")


class TestWorkerEquivalence:
    """workers=1 (incremental) and workers=2 (per-flush sharding) agree exactly.

    The parallel floor is lowered to one point so the small windows these
    tests use really run the sharded mode (a count window below
    ``SGB_PARALLEL_MIN_POINTS`` stays incremental by design — covered by
    ``test_session.TestParallelFloor``).
    """

    @pytest.mark.parametrize("size,slide", [(40, 40), (60, 20)])
    def test_workers_1_vs_2_bit_identical(self, size, slide, monkeypatch):
        monkeypatch.setenv("SGB_PARALLEL_MIN_POINTS", "1")
        points = _stream_points(220, seed=41)
        sessions = {
            w: StreamingSGB(eps=0.9, window=size, slide=slide, workers=w)
            for w in (1, 2)
        }
        assert sessions[2]._sharded
        flushes = {w: [] for w in sessions}
        for chunk in _chunks(points, 41):
            for w, session in sessions.items():
                flushes[w].extend(session.ingest(chunk))
        for w, session in sessions.items():
            flushes[w].extend(session.close())
        assert len(flushes[1]) == len(flushes[2])
        for a, b in zip(flushes[1], flushes[2]):
            assert a.indices == b.indices
            assert a.result.groups == b.result.groups
            assert a.deltas == b.deltas
            assert (a.window_id, a.epoch, a.start, a.end) == (
                b.window_id,
                b.epoch,
                b.start,
                b.end,
            )
        _assert_flushes_match_scratch(flushes[2], points, 0.9, "L2")

    def test_sharded_flushes_match_scratch_on_ticks(self, monkeypatch):
        monkeypatch.setenv("SGB_PARALLEL_MIN_POINTS", "1")
        rng = random.Random(53)
        points = _stream_points(160, seed=53)
        ticks = sorted(rng.randint(0, 300) for _ in points)
        session = StreamingSGB(
            eps=0.9, window=TickWindow(size=60, slide=20), workers=2
        )
        flushes = []
        for i in range(0, len(points), 9):
            flushes.extend(session.ingest(points[i : i + 9], ticks=ticks[i : i + 9]))
        flushes.extend(session.close())
        _assert_flushes_match_scratch(flushes, points, 0.9, "L2")


class TestDeltaConsistency:
    """Deltas must replay: applying each diff to the previous flush's groups
    reconstructs group membership transitions consistently."""

    def test_added_members_cover_all_new_arrivals(self):
        points = _stream_points(150, seed=61)
        session = StreamingSGB(eps=0.9, window=30, slide=10, workers=1)
        flushes = []
        for chunk in _chunks(points, 61):
            flushes.extend(session.ingest(chunk))
        flushes.extend(session.close())
        seen = set()
        for window in flushes:
            current = {m for group in window.global_groups() for m in group}
            new_arrivals = current - seen
            reported_added = {
                m
                for d in window.deltas
                for m in (d.added if d.kind.value != "GROUP_EXPIRED" else ())
            }
            created_members = {
                m
                for d in window.deltas
                if d.kind.value == "GROUP_CREATED"
                for m in d.members
            }
            # Every genuinely new arrival is announced by some event.
            assert new_arrivals <= (reported_added | created_members)
            seen |= current
