"""Behavioural tests for the StreamingSGB session (lifecycle, not equivalence)."""

from __future__ import annotations

import pytest

from repro.core.api import sgb_any
from repro.exceptions import DimensionalityError, InvalidParameterError
from repro.stream.deltas import DeltaKind
from repro.stream.session import StreamingSGB, stream_groups
from repro.stream.window import TickWindow

# Two tight clusters far apart, plus a bridge point linking them.
CLUSTER_A = [(0.0, 0.0), (0.4, 0.1), (0.1, 0.5)]
CLUSTER_B = [(5.0, 5.0), (5.3, 5.2), (5.1, 4.8)]
BRIDGE = [(2.5, 2.5)]


def ingest_all(session, points, chunk=3, ticks=None):
    out = []
    for i in range(0, len(points), chunk):
        if ticks is None:
            out.extend(session.ingest(points[i : i + chunk]))
        else:
            out.extend(session.ingest(points[i : i + chunk], ticks=ticks[i : i + chunk]))
    out.extend(session.close())
    return out


class TestCountWindows:
    def test_tumbling_windows_are_disjoint(self):
        session = StreamingSGB(eps=1.0, window=4)
        flushes = ingest_all(session, CLUSTER_A + CLUSTER_B + BRIDGE + [(9.0, 9.0)])
        assert [w.live_count for w in flushes] == [4, 4]
        assert [w.indices for w in flushes] == [[0, 1, 2, 3], [4, 5, 6, 7]]
        assert [(w.start, w.end) for w in flushes] == [(0, 4), (4, 8)]

    def test_sliding_window_keeps_last_size_points(self):
        session = StreamingSGB(eps=1.0, window=4, slide=2)
        flushes = ingest_all(session, CLUSTER_A + CLUSTER_B)
        assert [w.indices for w in flushes] == [[0, 1], [0, 1, 2, 3], [2, 3, 4, 5]]

    def test_final_partial_epoch_flushes_on_close(self):
        session = StreamingSGB(eps=1.0, window=4, slide=2)
        flushes = session.ingest(CLUSTER_A)  # 3 points: one full epoch + 1
        final = session.close()
        assert [w.live_count for w in flushes] == [2]
        assert [w.live_count for w in final] == [3]
        assert final[0].indices == [0, 1, 2]

    def test_close_does_not_reflush_an_exact_boundary(self):
        session = StreamingSGB(eps=1.0, window=2, slide=2)
        flushes = session.ingest(CLUSTER_A + BRIDGE)
        assert len(flushes) == 2
        assert session.close() == []

    def test_window_ids_are_sequential(self):
        session = StreamingSGB(eps=1.0, window=2, slide=2)
        flushes = ingest_all(session, CLUSTER_A + CLUSTER_B, chunk=2)
        assert [w.window_id for w in flushes] == [0, 1, 2]

    def test_live_count_is_bounded_by_the_window(self):
        session = StreamingSGB(eps=1.0, window=4, slide=2)
        for i in range(0, len(CLUSTER_A + CLUSTER_B), 2):
            session.ingest((CLUSTER_A + CLUSTER_B)[i : i + 2])
            assert session.live_count <= 4 + 2  # window + the open epoch

    def test_eviction_splits_bridged_group(self):
        # Window covers A + bridge + B at flush 1; after the slide evicts the
        # bridge, A-tail and B separate again.
        points = CLUSTER_A + BRIDGE + CLUSTER_B
        session = StreamingSGB(eps=2.7, window=8, slide=4)
        first = session.ingest(points)  # window 0: epochs {0..3} only after 4 pts
        rest = session.close()
        all_flushes = first + rest
        # Final window sees everything (7 points); from-scratch agreement:
        final = all_flushes[-1]
        reference = sgb_any([points[i] for i in final.indices], eps=2.7, workers=1)
        assert final.result.groups == reference.groups

    def test_expired_groups_emit_expiry_deltas(self):
        session = StreamingSGB(eps=1.0, window=3)
        flushes = ingest_all(session, CLUSTER_A + CLUSTER_B, chunk=3)
        assert len(flushes) == 2
        expired = [d for d in flushes[1].deltas if d.kind is DeltaKind.GROUP_EXPIRED]
        assert [d.members for d in expired] == [(0, 1, 2)]
        created = [d for d in flushes[1].deltas if d.kind is DeltaKind.GROUP_CREATED]
        assert [d.members for d in created] == [(3, 4, 5)]

    def test_global_groups_lift_local_positions(self):
        session = StreamingSGB(eps=1.0, window=3)
        session.ingest(CLUSTER_A)
        [flush] = session.ingest(CLUSTER_B)
        assert flush.indices == [3, 4, 5]
        assert flush.result.groups == [[0, 1, 2]]
        assert flush.global_groups() == [[3, 4, 5]]


class TestTickWindows:
    def test_idle_gap_expires_groups_then_goes_silent(self):
        policy = TickWindow(size=20, slide=10)
        session = StreamingSGB(eps=1.0, window=policy)
        session.ingest(CLUSTER_A, ticks=[0, 1, 2])
        # A huge tick jump: the window drains (bounded flushes), then silence.
        flushes = session.ingest([(9.0, 9.0)], ticks=[1000])
        assert 1 <= len(flushes) <= policy.epochs_per_window + 1
        last = flushes[-1]
        assert last.live_count == 0
        assert {d.kind for d in last.deltas} == {DeltaKind.GROUP_EXPIRED}

    def test_window_extent_is_in_ticks(self):
        session = StreamingSGB(eps=1.0, window=TickWindow(size=20, slide=10))
        session.ingest(CLUSTER_A, ticks=[0, 5, 9])
        [flush] = session.ingest(CLUSTER_B, ticks=[12, 14, 16])
        assert (flush.start, flush.end) == (-10, 10)
        assert flush.epoch == 0

    def test_non_monotone_ticks_rejected_across_batches(self):
        session = StreamingSGB(eps=1.0, window=TickWindow(size=20, slide=10))
        session.ingest(CLUSTER_A, ticks=[0, 1, 7])
        with pytest.raises(InvalidParameterError):
            session.ingest(CLUSTER_B, ticks=[6, 8, 9])

    def test_non_monotone_ticks_rejected_within_a_batch(self):
        session = StreamingSGB(eps=1.0, window=TickWindow(size=20, slide=10))
        with pytest.raises(InvalidParameterError):
            session.ingest(CLUSTER_A, ticks=[5, 3, 8])

    def test_ticks_required_for_tick_policy(self):
        session = StreamingSGB(eps=1.0, window=TickWindow(size=20, slide=10))
        with pytest.raises(InvalidParameterError):
            session.ingest(CLUSTER_A)

    def test_tick_count_must_match_points(self):
        session = StreamingSGB(eps=1.0, window=TickWindow(size=20, slide=10))
        with pytest.raises(InvalidParameterError):
            session.ingest(CLUSTER_A, ticks=[1, 2])


class TestSessionValidation:
    def test_window_required(self):
        with pytest.raises(InvalidParameterError):
            StreamingSGB(eps=1.0)

    def test_policy_and_slide_are_mutually_exclusive(self):
        with pytest.raises(InvalidParameterError):
            StreamingSGB(eps=1.0, window=TickWindow(size=4, slide=2), slide=2)

    def test_ticks_rejected_for_count_policy(self):
        session = StreamingSGB(eps=1.0, window=4)
        with pytest.raises(InvalidParameterError):
            session.ingest(CLUSTER_A, ticks=[1, 2, 3])

    def test_empty_ingest_is_a_noop(self):
        session = StreamingSGB(eps=1.0, window=2)
        assert session.ingest([]) == []
        assert session.live_count == 0 and session.ingested == 0

    def test_dimensionality_change_rejected(self):
        session = StreamingSGB(eps=1.0, window=4)
        session.ingest(CLUSTER_A)
        with pytest.raises(DimensionalityError):
            session.ingest([(1.0, 2.0, 3.0)])

    def test_closed_session_rejects_ingest(self):
        session = StreamingSGB(eps=1.0, window=2)
        session.close()
        with pytest.raises(InvalidParameterError):
            session.ingest(CLUSTER_A)

    def test_double_close_is_a_noop(self):
        session = StreamingSGB(eps=1.0, window=2)
        session.ingest(CLUSTER_A)
        assert len(session.close()) == 1
        assert session.close() == []

    def test_invalid_eps_rejected(self):
        with pytest.raises(InvalidParameterError):
            StreamingSGB(eps=0.0, window=4)


class TestStreamGroups:
    def test_generator_drives_a_whole_stream(self):
        batches = [CLUSTER_A, CLUSTER_B, BRIDGE]
        flushes = list(stream_groups(batches, eps=1.0, window=4, slide=2))
        assert [w.window_id for w in flushes] == list(range(len(flushes)))
        assert flushes[-1].live_count == 3  # final partial flush via close()

    def test_generator_with_ticks(self):
        batches = [(CLUSTER_A, [0, 1, 2]), (CLUSTER_B, [11, 12, 13])]
        flushes = list(
            stream_groups(batches, eps=1.0, window=TickWindow(size=20, slide=10))
        )
        assert flushes  # at least the close() flush
        assert all(w.result.is_partition() for w in flushes)


class TestParallelFloor:
    """Per-flush sharding respects the engine planner's parallel floor.

    A count window bounds the live point count at ``policy.size``; below
    ``SGB_PARALLEL_MIN_POINTS`` every flush would pay worker-pool overhead
    for a payload the engine planner degrades to serial anyway, so the
    session must stay in the (cheaper) incremental mode.
    """

    def test_small_count_window_stays_incremental(self, monkeypatch):
        monkeypatch.delenv("SGB_PARALLEL_MIN_POINTS", raising=False)
        session = StreamingSGB(eps=1.0, window=40, slide=20, workers=2)
        assert session._sharded is False  # 40 < the default 64-point floor
        # Incremental mode maintains per-epoch groupers.
        flushes = ingest_all(session, CLUSTER_A + CLUSTER_B + BRIDGE + BRIDGE)
        assert flushes and all(w.result.is_partition() for w in flushes)

    def test_large_count_window_shards(self, monkeypatch):
        monkeypatch.delenv("SGB_PARALLEL_MIN_POINTS", raising=False)
        session = StreamingSGB(eps=1.0, window=128, slide=64, workers=2)
        assert session._sharded is True

    def test_floor_env_override_is_honoured(self, monkeypatch):
        monkeypatch.setenv("SGB_PARALLEL_MIN_POINTS", "8")
        assert StreamingSGB(eps=1.0, window=16, slide=8, workers=2)._sharded
        assert not StreamingSGB(eps=1.0, window=4, slide=2, workers=2)._sharded

    def test_tick_windows_keep_requested_sharding(self, monkeypatch):
        monkeypatch.delenv("SGB_PARALLEL_MIN_POINTS", raising=False)
        # Tick windows carry no point-count bound: the mode stays sharded and
        # the per-flush engine planner makes the serial/parallel call.
        session = StreamingSGB(
            eps=1.0, window=TickWindow(size=20, slide=10), workers=2
        )
        assert session._sharded is True

    def test_serial_sessions_unaffected(self, monkeypatch):
        monkeypatch.delenv("SGB_PARALLEL_MIN_POINTS", raising=False)
        assert StreamingSGB(eps=1.0, window=256, slide=128, workers=1)._sharded is False
