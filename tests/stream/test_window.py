"""Window policy validation and epoch arithmetic."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidParameterError
from repro.stream.window import CountWindow, TickWindow, WindowPolicy, sliding, tumbling


class TestPolicyValidation:
    def test_tumbling_factory_sets_slide_to_size(self):
        policy = tumbling(100)
        assert isinstance(policy, CountWindow)
        assert policy.size == policy.slide == 100
        assert policy.tumbling
        assert policy.epochs_per_window == 1

    def test_sliding_factory(self):
        policy = sliding(100, 25)
        assert policy.size == 100 and policy.slide == 25
        assert not policy.tumbling
        assert policy.epochs_per_window == 4

    def test_tick_unit_factory(self):
        policy = sliding(60, 20, by="tick")
        assert isinstance(policy, TickWindow)
        assert policy.kind == "tick"

    def test_unknown_unit_rejected(self):
        with pytest.raises(InvalidParameterError):
            tumbling(10, by="rows")

    @pytest.mark.parametrize("size,slide", [(0, 1), (10, 0), (-5, 5), (10, -2)])
    def test_non_positive_rejected(self, size, slide):
        with pytest.raises(InvalidParameterError):
            CountWindow(size=size, slide=slide)

    def test_slide_larger_than_size_rejected(self):
        with pytest.raises(InvalidParameterError):
            CountWindow(size=10, slide=20)

    def test_size_must_be_multiple_of_slide(self):
        with pytest.raises(InvalidParameterError):
            CountWindow(size=10, slide=3)

    @pytest.mark.parametrize("bad", [1.5, "10", True])
    def test_non_integer_rejected(self, bad):
        with pytest.raises(InvalidParameterError):
            CountWindow(size=bad, slide=1)
        with pytest.raises(InvalidParameterError):
            CountWindow(size=10, slide=bad)

    def test_count_is_the_default_kind(self):
        assert WindowPolicy(size=4, slide=2).kind == "count"


class TestTickEpochs:
    def test_epoch_of_floors_by_slide(self):
        policy = TickWindow(size=100, slide=25)
        assert policy.epoch_of(0) == 0
        assert policy.epoch_of(24) == 0
        assert policy.epoch_of(25) == 1
        assert policy.epoch_of(99) == 3
        assert policy.epoch_of(100) == 4
