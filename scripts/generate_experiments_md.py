"""Generate EXPERIMENTS.md from the experiment-runner results.

Usage::

    python scripts/run_all_experiments.py     # writes experiment_results.json
    python scripts/generate_experiments_md.py experiment_results.json

The report compares every measured table/figure against the shape the paper
reports.  It is what produced the EXPERIMENTS.md checked into the repository.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.bench.report import format_series, format_table


def _speed_ratio(rows, slow_label, fast_label, key="strategy"):
    """Geometric-mean ratio slow/fast across matching sweep points."""
    import math

    slows = {}
    fasts = {}
    for r in rows:
        point = tuple(
            (k, v) for k, v in sorted(r.items()) if k not in (key, "seconds", "groups", "label")
        )
        if str(r[key]) == slow_label:
            slows[point] = r["seconds"]
        elif str(r[key]) == fast_label:
            fasts[point] = r["seconds"]
    ratios = [slows[p] / fasts[p] for p in slows if p in fasts and fasts[p] > 0]
    if not ratios:
        return float("nan")
    return math.exp(sum(math.log(r) for r in ratios) / len(ratios))


def main(path: str) -> None:
    data = json.loads(Path(path).read_text())
    lines: list[str] = []
    add = lines.append

    add("# EXPERIMENTS — paper vs. measured")
    add("")
    add("All measurements were taken with the pure-Python implementation in this")
    add("repository on a single CPU core (see README / DESIGN for the substitution")
    add("notes).  Absolute times are not comparable with the paper's PostgreSQL/C")
    add("implementation on TPC-H scale factors up to 60; the claims being checked are")
    add("the *relative* ones: which algorithm wins, by roughly what factor, and how")
    add("the curves scale.  Regenerate any row with `pytest benchmarks/<file> "
        "--benchmark-only` or the runners in `repro.bench.experiments`.")
    add("")

    # ---------------- Figure 9 ----------------
    add("## Figure 9 — effect of the similarity threshold ε")
    add("")
    add("Paper: the on-the-fly Index is ~2 orders of magnitude faster than All-Pairs,")
    add("Bounds-Checking ~1 order; runtimes drop as ε grows (fewer groups).")
    add("")
    for key, title in [
        ("fig9_join_any", "SGB-All / JOIN-ANY (seconds)"),
        ("fig9_eliminate", "SGB-All / ELIMINATE (seconds)"),
        ("fig9_form_new", "SGB-All / FORM-NEW-GROUP (seconds)"),
        ("fig9_any", "SGB-Any (seconds)"),
    ]:
        rows = data[key]
        add(f"### {title}, n = {rows[0]['n']}")
        add("")
        add("```")
        add(format_series(rows, x="eps", y="seconds", series="strategy"))
        add("```")
        ratio = _speed_ratio(rows, "all-pairs", "index")
        add("")
        add(f"Measured: the indexed variant is on (geometric) average **{ratio:.1f}x**")
        add("faster than All-Pairs at this scale; the gap widens with n (Figure 10).")
        add("")

    # ---------------- Figure 10 ----------------
    add("## Figure 10 — effect of the data size")
    add("")
    add("Paper: All-Pairs grows quadratically; Bounds-Checking and the Index grow")
    add("near-linearly with the Index consistently fastest (up to 3 orders of")
    add("magnitude over All-Pairs at SF 32).")
    add("")
    rows = data["fig10_all"]
    add("### SGB-All (JOIN-ANY), ε = 0.2 (seconds)")
    add("")
    add("```")
    add(format_series(rows, x="n", y="seconds", series="strategy"))
    add("```")
    add("")
    rows = data["fig10_any"]
    add("### SGB-Any, ε = 0.2 (seconds)")
    add("")
    add("```")
    add(format_series(rows, x="n", y="seconds", series="strategy"))
    add("```")
    naive = [r for r in rows if r["strategy"] == "all-pairs"]
    indexed = [r for r in rows if r["strategy"] == "index"]
    naive_growth = naive[-1]["seconds"] / naive[0]["seconds"]
    indexed_growth = indexed[-1]["seconds"] / indexed[0]["seconds"]
    n_growth = naive[-1]["n"] / naive[0]["n"]
    add("")
    add(f"Measured growth over a {n_growth:.0f}x size increase: All-Pairs slows down "
        f"**{naive_growth:.1f}x** (consistent with quadratic growth) while the Index "
        f"slows down only **{indexed_growth:.1f}x** — the same divergence the paper's "
        "Figure 10d shows, so the gap keeps widening with the data size.")
    add("")

    # ---------------- Figure 11 ----------------
    add("## Figure 11 — SGB vs standalone clustering")
    add("")
    add("Paper: the SGB operators beat DBSCAN, BIRCH, and K-means by 1–3 orders of")
    add("magnitude on the Brightkite and Gowalla check-in data.")
    add("")
    for key in ("fig11_brightkite", "fig11_gowalla"):
        rows = data[key]
        add(f"### {rows[0]['dataset']} stand-in (seconds)")
        add("")
        add("```")
        add(format_series(rows, x="n", y="seconds", series="algorithm"))
        add("```")
        add("")

    # ---------------- Table 1 ----------------
    add("## Table 1 — complexity of the SGB-All strategies")
    add("")
    add("Paper (analytical, L∞): All-Pairs O(n²)–O(n³), Bounds-Checking O(n·|G|),")
    add("on-the-fly Index O(n·log|G|).  Measured: fitted log-log growth exponents.")
    add("")
    add("```")
    add(format_table(
        [
            {
                "strategy": r["strategy"],
                "sizes": r["sizes"],
                "seconds": r["seconds"],
                "fitted exponent": r["empirical_exponent"],
            }
            for r in data["table1"]
        ]
    ))
    add("```")
    add("")

    # ---------------- Table 2 ----------------
    add("## Table 2 — TPC-H evaluation queries")
    add("")
    rows = data["table2"]
    add(f"Synthetic TPC-H at scale factor {rows[0]['scale_factor']} through the SQL")
    add("engine (parse → plan → execute), indexed SGB plans.")
    add("")
    add("```")
    add(format_table(
        [
            {"query": r["query"], "output rows": r["output_rows"], "seconds": round(r["seconds"], 3)}
            for r in rows
        ]
    ))
    add("```")
    add("")

    # ---------------- Figure 12 ----------------
    add("## Figure 12 — overhead of SGB vs standard GROUP BY")
    add("")
    add("Paper: JOIN-ANY is at or below the plain GROUP BY; ELIMINATE ≈ +15%,")
    add("SGB-Any ≈ +20%, FORM-NEW-GROUP ≈ +40%.")
    add("")
    rows = data["fig12"]
    add("```")
    add(format_table(
        [
            {
                "panel": r["panel"],
                "scale_factor": r["scale_factor"],
                "query": r["query"],
                "seconds": round(r["seconds"], 3),
                "overhead vs GB (%)": r["overhead_pct"],
            }
            for r in rows
        ]
    ))
    add("```")
    add("")
    add("The measured overheads are of the same order as the paper's (tens of")
    add("percent, not multiples), with JOIN-ANY cheapest among the SGB-All variants")
    add("and FORM-NEW-GROUP most expensive.  Exact percentages differ because the")
    add("derived-relation part of each query (joins + pre-aggregation) dominates")
    add("differently in a pure-Python engine.")
    add("")

    # ---------------- batch vs scalar ----------------
    if "batch_vs_scalar" in data:
        add("## Batch vs scalar execution path (beyond the paper)")
        add("")
        add("The batched columnar pipeline (`add_batch` over a `PointSet`) against")
        add("the scalar per-tuple reference path of the same operator; identical")
        add("groupings, execution strategy `index`.")
        add("")
        rows = data["batch_vs_scalar"]
        add("```")
        add(format_table(
            [
                {
                    "operator": r["operator"],
                    "path": r["path"],
                    "n": r["n"],
                    "backend": r["backend"],
                    "seconds": round(r["seconds"], 3),
                    "speedup vs scalar": r["speedup"],
                }
                for r in rows
            ]
        ))
        add("```")
        add("")

    # ---------------- parallel vs serial ----------------
    if "parallel_vs_serial" in data:
        add("## Sharded parallel execution vs the serial batch path (beyond the paper)")
        add("")
        add("SGB-Any over grid-partitioned shards in worker processes (`workers=N` /")
        add("SQL `WORKERS N`): the input is striped into eps-aligned slabs along its")
        add("widest axis, each shard is grouped independently, and the per-shard")
        add("Union-Find forests are merged over the halo-band edges.  Group")
        add("assignments are identical to the serial baseline by construction (see")
        add("README, \"Parallel execution\"); only the wall-clock changes.  Speedups")
        add("depend on the physical core count of the measuring machine, reported")
        add("in the `cpus` column — with fewer cores than workers the pool degrades")
        add("gracefully towards serial speed.")
        add("")
        rows = data["parallel_vs_serial"]
        add("```")
        add(format_table(
            [
                {
                    "path": r["path"],
                    "n": r["n"],
                    "cpus": r["cpu_count"],
                    "backend": r["backend"],
                    "seconds": round(r["seconds"], 3),
                    "speedup vs serial": r["speedup"],
                }
                for r in rows
            ]
        ))
        add("```")
        add("")

    # ---------------- adaptive planner ----------------
    if "planner_adaptive" in data:
        add("## Cost-based planner: adaptive mode and fan-out selection (beyond the paper)")
        add("")
        add("The delegated `workers=\"auto\"` path lets the cost planner pick serial")
        add("vs sharded execution — and the shard fan-out — from cached per-input")
        add("statistics (count, bbox, per-axis eps-cell histograms), against the")
        add("serial batch baseline and the legacy one-slab-per-worker decomposition")
        add("(the `speedup` baseline).  On skewed inputs the planner over-decomposes")
        add("(fan-out > workers) so the hot slab splits across the pool; on uniform")
        add("inputs the arms converge.  All arms return identical groupings")
        add("(`tests/engine/test_planner_equivalence.py`); the `plan` column is what")
        add("the planner chose on this machine, and with few cores it degrades to")
        add("serial mode by design.")
        add("")
        rows = data["planner_adaptive"]
        add("```")
        add(format_table(
            [
                {
                    "workload": r["workload"],
                    "path": r["path"],
                    "n": r["n"],
                    "cpus": r["cpu_count"],
                    "seconds": round(r["seconds"], 3),
                    "speedup vs 1-slab/worker": r["speedup"],
                }
                for r in rows
            ]
        ))
        add("```")
        add("")
        plans = [r["plan"] for r in rows if r.get("plan")]
        if plans:
            add("Planner-chosen plans on this machine:")
            add("")
            add("```")
            for r in rows:
                if r.get("plan"):
                    add(f"{r['workload']:>8} n={r['n']:<7} {r['plan']}")
            add("```")
            add("")

    # ---------------- streaming windows ----------------
    if "streaming_window" in data:
        add("## Streaming windowed grouping: incremental vs re-group per window (beyond the paper)")
        add("")
        add("A sliding count window driven through `repro.stream` (`StreamingSGB` /")
        add("SQL `WINDOW n SLIDE m`): the incremental session discovers every")
        add("eps-edge once and repairs its Union-Find forest when an epoch of points")
        add("expires, while the baseline re-runs the batch `sgb_any` over the")
        add("window's live points at every slide.  Per-window groupings are")
        add("bit-identical across the two paths (enforced by `tests/stream`); the")
        add("incremental advantage grows with the window/slide ratio because the")
        add("baseline re-processes every point `window / slide` times.")
        add("")
        rows = data["streaming_window"]
        add("```")
        add(format_table(
            [
                {
                    "path": r["path"],
                    "n": r["n"],
                    "window": r["window"],
                    "slide": r["slide"],
                    "windows": r["flushes"],
                    "backend": r["backend"],
                    "seconds": round(r["seconds"], 3),
                    "speedup vs full": r["speedup"],
                }
                for r in rows
            ]
        ))
        add("```")
        add("")

    # ---------------- similarity joins ----------------
    if "join_vs_allpairs" in data:
        add("## Similarity joins: grid eps-join vs all-pairs (beyond the paper)")
        add("")
        add("The eps-join of `repro.join` (`sim_join` / SQL `SIMILARITY JOIN ... ON")
        add("DISTANCE(...) WITHIN eps`) pairs the tuples of two relations through the")
        add("same eps-grid sweep the SGB batch path uses, against the blocked")
        add("all-pairs nested loop as the baseline.  Each size is the total point")
        add("count, split evenly between two clustered relations; both paths return")
        add("the identical sorted pair list (enforced by `tests/join`), so only the")
        add("wall-clock differs.  The grid win grows with the input size because the")
        add("baseline is quadratic while the grid visits only neighbouring cells.")
        add("")
        rows = data["join_vs_allpairs"]
        add("```")
        add(format_table(
            [
                {
                    "path": r["path"],
                    "n (total)": r["n"],
                    "pairs": r["pairs"],
                    "backend": r["backend"],
                    "seconds": round(r["seconds"], 3),
                    "speedup vs all-pairs": r["speedup"],
                }
                for r in rows
            ]
        ))
        add("```")
        add("")

    # ---------------- fused join→group pipeline ----------------
    if "fused_vs_materialized" in data:
        add("## Fused join→group pipeline vs materialize-then-group (beyond the paper)")
        add("")
        add("The fused pipeline (`fused_join_group` / the SQL executor's automatic")
        add("join→SGB fusion) groups only the *distinct* matched points of the join")
        add("and expands the components over the pair positions, instead of")
        add("materialising one point per matched pair and sweeping the duplicated")
        add("relation.  Canonical groupings are bit-identical (enforced by")
        add("`tests/join/test_fused.py`); the advantage scales with the pair/point")
        add("fan-out, since a point matched m times costs the materialized sweep m²")
        add("edge work (`benchmarks/test_fused_pipeline.py` measures ~50x at 25x")
        add("fan-out).")
        add("")
        rows = data["fused_vs_materialized"]
        add("```")
        add(format_table(
            [
                {
                    "path": r["path"],
                    "n (total)": r["n"],
                    "groups": r["groups"],
                    "backend": r["backend"],
                    "seconds": round(r["seconds"], 3),
                    "speedup vs materialized": r["speedup"],
                }
                for r in rows
            ]
        ))
        add("```")
        add("")

    # ---------------- sharded kNN-join ----------------
    if "knn_parallel" in data:
        add("## Sharded parallel kNN-join vs the serial probe join (beyond the paper)")
        add("")
        add("The kNN-join sharded over worker processes (`knn_join(..., workers=N)`):")
        add("the left relation is partitioned and every worker ranks its left points")
        add("against the full right side, so the merged pair list is bit-identical to")
        add("the serial join with no halo stitching (enforced by")
        add("`tests/join/test_knn_sharded.py`).  `rebuild` lets each worker bulk-load")
        add("its own right R-tree; `ship-index` pickles the coordinator's tree into")
        add("the task payloads.  As with the other parallel stages, the speedup is")
        add("bounded by the physical core count in the `cpus` column.")
        add("")
        rows = data["knn_parallel"]
        add("```")
        add(format_table(
            [
                {
                    "path": r["path"],
                    "n (total)": r["n"],
                    "k": r["k"],
                    "cpus": r["cpu_count"],
                    "backend": r["backend"],
                    "seconds": round(r["seconds"], 3),
                    "speedup vs serial": r["speedup"],
                }
                for r in rows
            ]
        ))
        add("```")
        add("")

    # ---------------- result cache ----------------
    if "cache_warm_vs_cold" in data:
        add("## Tiered result cache: warm vs cold repeats (beyond the paper)")
        add("")
        add("The content-addressed result cache (`cache=` / `SGB_CACHE`): the cold")
        add("run computes and stores the grouping or pair list, the warm repeat of")
        add("the identical call is served from the cache under a fingerprint of the")
        add("input batch and the result-changing parameters.  The `identical` column")
        add("is asserted in-process — a hit returns bit-identical groups/pairs, so")
        add("only the wall-clock changes; any mutation of the input bumps the")
        add("fingerprint and forces a recompute (`tests/storage`,")
        add("`tests/minidb/test_version_invalidation.py`).")
        add("")
        rows = data["cache_warm_vs_cold"]
        add("```")
        add(format_table(
            [
                {
                    "operator": r["operator"],
                    "phase": r["phase"],
                    "n": r["n"],
                    "backend": r["backend"],
                    "seconds": round(r["seconds"], 4),
                    "speedup vs cold": r.get("speedup") or "",
                    "identical": r["identical"],
                }
                for r in rows
            ]
        ))
        add("```")
        add("")

    # ---------------- serving overhead ----------------
    if "serving_overhead" in data:
        add("## HTTP serving overhead vs the in-process call (beyond the paper)")
        add("")
        add("The same SGB-Any batch through `POST /v1/sgb` of `repro.server` — a")
        add("single sequential client and N concurrent keep-alive clients against")
        add("the in-process `sgb_any` baseline (result cache pinned off on both")
        add("sides, `workers=1`).  The `identical` column asserts the service")
        add("contract: every HTTP response decodes back bit-identical to the")
        add("in-process payload.  The overhead factor is per-request latency over")
        add("the bare call — transport + JSON on one client; at 8 clients the")
        add("request thread pool serialises the CPU-bound groupings, so latency")
        add("grows while aggregate throughput holds (see README, \"Serving\").")
        add("")
        rows = data["serving_overhead"]
        add("```")
        add(format_table(
            [
                {
                    "clients": r["clients"],
                    "requests": r["requests"],
                    "n": r["n"],
                    "backend": r["backend"],
                    "in-process s": round(r["in_process_s"], 4),
                    "mean request s": r["mean_request_s"],
                    "throughput rps": r["throughput_rps"],
                    "overhead vs in-process": r["overhead_factor"],
                    "identical": r["identical"],
                }
                for r in rows
            ]
        ))
        add("```")
        add("")

    # ---------------- optimizer rewrites ----------------
    if "optimizer_rewrites" in data:
        add("## Cost-driven rewrite layer (beyond the paper)")
        add("")
        add("The logical optimizer (`repro.minidb.plan.rewrite`) re-places WHERE")
        add("conjuncts around similarity joins and reorders multi-join chains by")
        add("histogram-overlap selectivity before execution.  Two target shapes:")
        add("a selective filter over a derived similarity join (pushed into the")
        add("eps-join's left input) and a three-relation chain written worst-first")
        add("(the small relation is moved forward).  The `bit identical` column is")
        add("asserted in-process — the optimized arm must return exactly the rows")
        add("of the `optimizer=False` reference arm, which the randomized")
        add("equivalence suite (`tests/minidb/test_optimizer.py`) also")
        add("checks across both PointSet backends and 1/2 workers.")
        add("")
        rows = data["optimizer_rewrites"]
        add("```")
        add(format_table(
            [
                {
                    "workload": r["workload"],
                    "arm": r["arm"],
                    "n": r["n"],
                    "backend": r["backend"],
                    "output rows": r["output_rows"],
                    "seconds": round(r["seconds"], 4),
                    "speedup vs reference": r.get("speedup") or "",
                    "bit identical": r["bit_identical"],
                }
                for r in rows
            ]
        ))
        add("```")
        add("")

    # ---------------- fidelity notes ----------------
    add("## Fidelity notes (where the measured shape deviates from the paper)")
    add("")
    add("* **Magnitude of the Index speed-up.**  The paper reports 2–3 orders of")
    add("  magnitude over All-Pairs at 0.5M–10M tuples; at the laptop-scale inputs")
    add("  used here (≤ 4k points) the measured gap is roughly 4–15x and still")
    add("  widening with n (Figure 10), i.e. the asymptotic story matches but the")
    add("  absolute separation needs the paper's input sizes to fully develop.")
    add("* **Bounds-Checking on ELIMINATE / FORM-NEW-GROUP.**  Without the R-tree,")
    add("  the overlap-group scan costs about as much as All-Pairs on these highly")
    add("  fragmented workloads (|G| close to n), so Bounds-Checking only clearly")
    add("  beats All-Pairs under JOIN-ANY at small ε.  The paper's workloads have")
    add("  larger groups (|G| << n), which is where the O(n·|G|) bound pays off;")
    add("  the indexed variant dominates in both settings.")
    add("* **K-means in Figure 11.**  DBSCAN and BIRCH are slower than every SGB")
    add("  variant, as in the paper.  K-means appears faster here only because its")
    add("  inner loop is vectorised with numpy while the SGB operators are pure")
    add("  Python; with both sides in the same implementation technology (as in the")
    add("  paper's C-level comparison) the multi-pass K-means loses.")
    add("")

    Path("EXPERIMENTS.md").write_text("\n".join(lines))
    print(f"wrote EXPERIMENTS.md ({len(lines)} lines)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "experiment_results.json")
