"""CI boot-and-probe smoke: start the real server, hit it, shut it down.

Run with::

    PYTHONPATH=src python scripts/server_smoke.py

Spawns ``python -m repro.server --port 0`` as a genuine subprocess, parses
the listen banner for the bound port, probes ``/v1/health``, creates a table
and runs one SGB query over HTTP, then sends SIGTERM and asserts the drain
completes with exit code 0.  Exits non-zero (with the server's output) on
any failure — this is the deploy-shaped check the unit suites cannot give.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import time
from typing import NoReturn

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def fail(message: str, output: str = "") -> NoReturn:
    print(f"SMOKE FAILED: {message}", file=sys.stderr)
    if output:
        print(output, file=sys.stderr)
    sys.exit(1)


def request(host: str, port: int, method: str, path: str, payload=None):
    conn = http.client.HTTPConnection(host, port, timeout=15)
    try:
        body = None if payload is None else json.dumps(payload).encode()
        conn.request(method, path, body=body, headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.server", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    try:
        deadline = time.monotonic() + 30
        banner = ""
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if not line and proc.poll() is not None:
                fail(f"server exited early with {proc.returncode}")
            if "listening on" in line:
                banner = line.strip()
                break
        if not banner:
            proc.kill()
            fail("server never printed its listen banner")
        host, _, port = banner.rsplit("http://", 1)[1].partition(":")
        port = int(port)
        print(f"server up on {host}:{port}")

        status, health = request(host, port, "GET", "/v1/health")
        if status != 200 or health.get("status") != "ok":
            fail(f"health probe failed: {status} {health}")
        print("health ok")

        status, _ = request(
            host, port, "POST", "/v1/query",
            {"sql": "CREATE TABLE pts (x DOUBLE, y DOUBLE)"},
        )
        if status != 200:
            fail(f"CREATE TABLE failed: {status}")
        status, _ = request(
            host, port, "POST", "/v1/load",
            {"table": "pts", "rows": [[0.0, 0.0], [0.1, 0.1], [5.0, 5.0]]},
        )
        if status != 200:
            fail(f"load failed: {status}")
        status, result = request(
            host, port, "POST", "/v1/query",
            {"sql": "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 0.5"},
        )
        if status != 200 or result.get("rowcount") != 2:
            fail(f"SGB query over HTTP wrong: {status} {result}")
        print(f"SGB query ok: {result['rows']}")

        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=30)
        if proc.returncode != 0:
            fail(f"drain exited {proc.returncode}", out)
        if "stopped cleanly" not in out:
            fail("drain did not report a clean stop", out)
        print("clean shutdown ok")
        return 0
    except Exception:
        proc.kill()
        raise


if __name__ == "__main__":
    sys.exit(main())
