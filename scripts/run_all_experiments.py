"""Run every experiment runner and dump the raw rows to experiment_results.json.

This is the companion to ``generate_experiments_md.py``; together they rebuild
EXPERIMENTS.md from scratch:

    python scripts/run_all_experiments.py
    python scripts/generate_experiments_md.py experiment_results.json

The default sizes finish in a few minutes on a laptop.  Pass ``--large`` to
use sizes closer to the paper's (slower, sharper separation), and
``--workers N`` to set the worker-process count the ``parallel_vs_serial``
stage compares against the serial baseline (default: 2 and 4 workers).

Completed stages are checkpointed to ``experiment_results.checkpoint`` after
each one finishes; an interrupted run restarted with ``--resume`` replays the
finished stages from the checkpoint and only measures the remaining ones.
The checkpoint is deleted once the full JSON is written.  A checkpoint taken
under different flags (``--large`` / ``--workers``) is ignored — mixing sizes
across a resume would produce incomparable rows.
"""

from __future__ import annotations

import os
import sys
import time

from repro.bench import experiments as E
from repro.bench.report import write_json
from repro.storage.checkpoint import load_checkpoint, save_checkpoint

CHECKPOINT_PATH = "experiment_results.checkpoint"
_CHECKPOINT_FORMAT = "experiment-stages/1"


def _parse_workers(argv: "list[str]") -> "tuple[int, ...]":
    """Return the worker counts for the parallel stage (``--workers N``)."""
    if "--workers" in argv:
        position = argv.index("--workers")
        try:
            return (int(argv[position + 1]),)
        except (IndexError, ValueError):
            raise SystemExit("--workers expects an integer argument")
    return (2, 4)


def _load_resume(config: "dict", resume: bool) -> "dict":
    """Completed stage rows from the checkpoint, or ``{}`` when unusable."""
    if not resume:
        return {}
    payload = load_checkpoint(CHECKPOINT_PATH)
    if (
        not isinstance(payload, dict)
        or payload.get("format") != _CHECKPOINT_FORMAT
        or payload.get("config") != config
    ):
        if payload is not None:
            print("checkpoint ignored: different flags or format", flush=True)
        return {}
    stages = payload.get("stages")
    return dict(stages) if isinstance(stages, dict) else {}


def main(
    large: bool = False,
    worker_counts: "tuple[int, ...]" = (2, 4),
    resume: bool = False,
) -> None:
    k = 2 if large else 1
    config = {"large": large, "worker_counts": list(worker_counts)}
    out = _load_resume(config, resume)
    stages = [
        ("fig9_join_any", lambda: E.fig9_sgb_all_epsilon("JOIN-ANY", n=1500 * k, eps_values=(0.1, 0.5, 0.9))),
        ("fig9_eliminate", lambda: E.fig9_sgb_all_epsilon("ELIMINATE", n=1500 * k, eps_values=(0.1, 0.5, 0.9))),
        ("fig9_form_new", lambda: E.fig9_sgb_all_epsilon("FORM-NEW-GROUP", n=1500 * k, eps_values=(0.1, 0.5, 0.9))),
        ("fig9_any", lambda: E.fig9_sgb_any_epsilon(n=1500 * k, eps_values=(0.1, 0.5, 0.9))),
        ("fig10_all", lambda: E.fig10_sgb_all_scale("JOIN-ANY", sizes=(500 * k, 1000 * k, 2000 * k, 4000 * k))),
        ("fig10_any", lambda: E.fig10_sgb_any_scale(sizes=(500 * k, 1000 * k, 2000 * k, 4000 * k))),
        ("fig11_brightkite", lambda: E.fig11_vs_clustering(sizes=(1000 * k, 2000 * k), dataset="brightkite")),
        ("fig11_gowalla", lambda: E.fig11_vs_clustering(sizes=(1000 * k, 2000 * k), dataset="gowalla")),
        ("batch_vs_scalar", lambda: E.batch_vs_scalar(sizes=(10_000 * k, 25_000 * k))),
        ("parallel_vs_serial", lambda: E.parallel_vs_serial(
            sizes=(10_000 * k, 50_000 * k), worker_counts=worker_counts)),
        ("planner_adaptive", lambda: E.planner_adaptive(
            sizes=(10_000 * k, 30_000 * k), workers=max(worker_counts))),
        ("streaming_window", lambda: E.streaming_window(
            sizes=(10_000 * k, 25_000 * k), window=10_000 * k, slide=1_250 * k)),
        ("join_vs_allpairs", lambda: E.join_vs_allpairs(sizes=(10_000 * k, 25_000 * k))),
        ("fused_vs_materialized", lambda: E.fused_vs_materialized(sizes=(10_000 * k, 25_000 * k))),
        ("knn_parallel", lambda: E.knn_parallel(
            sizes=(5_000 * k, 10_000 * k), worker_counts=worker_counts)),
        ("cache_warm_vs_cold", lambda: E.cache_warm_vs_cold(sizes=(10_000 * k, 25_000 * k))),
        ("serving_overhead", lambda: E.serving_overhead(sizes=(2_000 * k, 5_000 * k))),
        ("optimizer_rewrites", lambda: E.optimizer_rewrites(n=5_000 * k)),
        ("table1", lambda: E.table1_scaling_exponents(sizes=(500 * k, 1000 * k, 2000 * k))),
        ("table2", lambda: E.table2_tpch_queries(scale_factor=0.002 * k)),
        ("fig12", lambda: E.fig12_overhead(scale_factors=(0.001 * k, 0.002 * k))),
    ]
    for name, fn in stages:
        if name in out:
            print(f"{name:<20} resumed from checkpoint", flush=True)
            continue
        start = time.perf_counter()
        out[name] = fn()
        print(f"{name:<20} done in {time.perf_counter() - start:6.1f}s", flush=True)
        save_checkpoint(
            {"format": _CHECKPOINT_FORMAT, "config": config, "stages": out},
            CHECKPOINT_PATH,
        )
    write_json(out, "experiment_results.json")
    if os.path.exists(CHECKPOINT_PATH):
        os.remove(CHECKPOINT_PATH)
    print("wrote experiment_results.json")


if __name__ == "__main__":
    main(
        large="--large" in sys.argv,
        worker_counts=_parse_workers(sys.argv),
        resume="--resume" in sys.argv,
    )
