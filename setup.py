"""Setup shim so `pip install -e .` / `setup.py develop` work without the wheel package."""
from setuptools import setup

setup()
